//! SIMTight's compressed register files, extended for CHERI (Sections 3.1
//! and 3.2 of the paper).
//!
//! A streaming multiprocessor holds `32 × warps` architectural *vector*
//! registers (each thread's scalar register is one element of a warp-wide
//! vector). The compressed register file exploits inter-thread *value
//! regularity*:
//!
//! * A **scalar register file (SRF)** holds one entry per architectural
//!   vector register: either a compact `base + stride` pair (uniform when
//!   the stride is zero, affine otherwise) or a pointer into the VRF.
//! * A size-constrained **vector register file (VRF)** holds the vectors
//!   that cannot be compressed, allocated on demand from a free stack.
//!   When the free stack runs dry the pipeline spills a vector register to
//!   main memory and fills it back on demand.
//!
//! For CHERI, a second compressed register file holds the 33-bit capability
//! *metadata* (Section 3.2). It detects only uniform vectors (a stride makes
//! no sense for metadata), optionally shares its VRF with the data register
//! file, and supports the **null-value optimisation (NVO)**: an SRF entry
//! may carry a lane mask marking which elements are the constant null
//! metadata, so a uniform metadata vector partially overwritten with nulls
//! (or vice versa) stays scalar.
//!
//! # Example
//!
//! ```
//! use simt_regfile::{CompressedRegFile, RfConfig};
//!
//! let mut rf = CompressedRegFile::new(RfConfig::data(4, 8, 8));
//! // An affine vector (thread indices) compresses into the SRF.
//! let tid: Vec<u64> = (0..8).collect();
//! rf.write(0, 5, &tid, u64::MAX);
//! assert_eq!(rf.vrf_resident(), 0);
//! let mut out = [0u64; 8];
//! rf.read(0, 5, &mut out);
//! assert_eq!(&out[..], &tid[..]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod storage;

pub use storage::{uncompressed_bits, RegFileStorage, SrfEntryBits};

use simt_trace::{EventSink, RfKind, TraceEvent};

/// Configuration of one compressed register file.
#[derive(Debug, Clone, Copy)]
pub struct RfConfig {
    /// Number of warps.
    pub warps: u32,
    /// Threads per warp (vector lanes).
    pub lanes: u32,
    /// Architectural registers per thread (32 for RV32).
    pub arch_regs: u32,
    /// Capacity of the vector register file, in vector slots.
    pub vrf_slots: u32,
    /// Detect affine (base+stride) vectors, not just uniform ones.
    pub detect_affine: bool,
    /// Null-value optimisation: treat this element value as "null" and keep
    /// partially-null uniform vectors in the SRF under a lane mask.
    pub null_value: Option<u64>,
    /// Element width in bits (32 for data, 33 for capability metadata) —
    /// used for storage accounting only.
    pub elem_bits: u32,
    /// Number of identical SRF copies (2 for the baseline's three read
    /// ports, 1 for the halved-port metadata SRF).
    pub srf_copies: u32,
}

impl RfConfig {
    /// The baseline data register file: uniform+affine detection, duplicated
    /// SRF, 32-bit elements.
    pub fn data(warps: u32, lanes: u32, vrf_slots: u32) -> Self {
        RfConfig {
            warps,
            lanes,
            arch_regs: 32,
            vrf_slots,
            detect_affine: true,
            null_value: None,
            elem_bits: 32,
            srf_copies: 2,
        }
    }

    /// The capability-metadata register file: uniform detection only,
    /// single-copy SRF (CSC pays an extra cycle), 33-bit elements, optional
    /// NVO.
    pub fn meta(warps: u32, lanes: u32, vrf_slots: u32, nvo: bool) -> Self {
        RfConfig {
            warps,
            lanes,
            arch_regs: 32,
            vrf_slots,
            detect_affine: false,
            null_value: nvo.then_some(NULL_META),
            elem_bits: 33,
            srf_copies: 1,
        }
    }

    /// Override the number of architectural registers the file must cover
    /// (the §4.3 forecast: with compiler support confining capabilities to
    /// 16 registers, the metadata SRF halves).
    pub fn with_arch_regs(mut self, arch_regs: u32) -> Self {
        self.arch_regs = arch_regs;
        self
    }

    /// Total architectural vector registers.
    pub fn total_regs(&self) -> u32 {
        self.warps * self.arch_regs
    }
}

/// The metadata value of the null capability, as stored in the 33-bit
/// metadata register file (tag bit 32 clear, all fields zero).
pub const NULL_META: u64 = 0;

/// Maximum supported lane count.
pub const MAX_LANES: usize = 64;

/// Strides representable in the SRF's 6-bit signed stride field.
const STRIDE_MIN: i64 = -32;
const STRIDE_MAX: i64 = 31;

/// A warp-wide operand in its *compact* form — the typed counterpart of
/// the SRF/VRF split. The execute stage reads operands in this
/// representation and, when every input is compact, computes the result
/// once per warp instead of once per lane (the simulator-side use of the
/// paper's §3.1 inter-thread value regularity).
///
/// Lane contract: `Uniform(v)` is `v` in every lane (full 64-bit value);
/// `Affine { base, stride }` is
/// `(base as u32).wrapping_add((stride as u32).wrapping_mul(i))` in lane
/// `i`, zero-extended — affine vectors live in the 32-bit data domain and
/// `base` is exactly the lane-0 value; `Vector` is one element per lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OperandVec {
    /// Every lane holds the same value.
    Uniform(u64),
    /// `base + lane · stride`, modulo 2³².
    Affine {
        /// Lane-0 value (already truncated to the 32-bit data domain).
        base: u64,
        /// Per-lane increment, modulo 2³² (any congruent value is valid).
        stride: i64,
    },
    /// Irregular: one element per lane (only the first `lanes` are live).
    Vector(Box<[u64]>),
}

/// The capability-metadata analogue of [`OperandVec`]: the metadata
/// register file detects no affine vectors, so a metadata operand is only
/// ever `Uniform` or `Vector` (an NVO `PartialNull` entry expands to
/// `Vector` — its lanes differ).
pub type MetaVec = OperandVec;

impl OperandVec {
    /// Expand into `out` (one element per lane), following the lane
    /// contract above.
    pub fn expand_into(&self, out: &mut [u64]) {
        match *self {
            OperandVec::Uniform(v) => out.fill(v),
            OperandVec::Affine { base, stride } => {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = (base as u32).wrapping_add((stride as u32).wrapping_mul(i as u32)) as u64;
                }
            }
            OperandVec::Vector(ref v) => out.copy_from_slice(&v[..out.len()]),
        }
    }
}

/// Residency class of a register, as seen *without* disturbing spill
/// state — the pre-issue classifier's view. `Uniform` and `Affine` are
/// compact SRF entries; `Vector` covers VRF-resident, spilled, and NVO
/// partial-null entries (their lanes differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandClass {
    /// Compact: every lane equal.
    Uniform,
    /// Compact: `base + lane · stride`.
    Affine,
    /// Uncompressed (or partial-null): lanes differ.
    Vector,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    /// `base + lane * stride` (stride 0 = uniform).
    Scalar { base: u64, stride: i8 },
    /// NVO: lanes in `mask` hold `value`; the rest hold the null value.
    PartialNull { value: u64, mask: u64 },
    /// Uncompressed, resident in the VRF.
    Vector { slot: u32 },
    /// Uncompressed, spilled to main memory (contents kept functionally).
    Spilled(Vec<u64>),
}

/// Cumulative register-file statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RfStats {
    /// Vector registers spilled to memory (VRF overflow).
    pub spills: u64,
    /// Vector registers filled back from memory.
    pub fills: u64,
    /// Writes that landed compactly in the SRF.
    pub scalar_writes: u64,
    /// Writes that required a VRF slot.
    pub vector_writes: u64,
    /// Peak number of VRF-resident vectors.
    pub peak_resident: u32,
}

/// Result of a read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadInfo {
    /// The operand came from the VRF (uncompressed).
    pub from_vrf: bool,
    /// Fills (and chained spills) triggered to bring the operand back.
    pub fills: u32,
    /// Spills triggered to make room for the fill.
    pub spills: u32,
}

/// Result of a write.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteInfo {
    /// The result was stored compactly in the SRF.
    pub to_srf: bool,
    /// Spills triggered (VRF overflow).
    pub spills: u32,
    /// Fills triggered (partial write to a spilled register).
    pub fills: u32,
}

/// One compressed register file (Figure 5).
#[derive(Debug, Clone)]
pub struct CompressedRegFile {
    cfg: RfConfig,
    entries: Vec<Entry>,
    /// VRF backing store, `vrf_slots × lanes` elements.
    vrf: Vec<u64>,
    /// Free stack of VRF slots.
    free: Vec<u32>,
    /// Round-robin spill victim cursor (over architectural registers).
    victim: usize,
    resident: u32,
    stats: RfStats,
    /// Per-warp bitmask of architectural registers that ever held a
    /// non-null element (drives Figure 11 for the metadata register file).
    ever_nonnull: Vec<u32>,
}

impl CompressedRegFile {
    /// Create a register file with all registers reading as zero.
    ///
    /// # Panics
    ///
    /// Panics if the lane count exceeds [`MAX_LANES`].
    pub fn new(cfg: RfConfig) -> Self {
        assert!(cfg.lanes as usize <= MAX_LANES, "too many lanes");
        assert!(cfg.srf_copies >= 1);
        CompressedRegFile {
            cfg,
            entries: vec![Entry::Scalar { base: 0, stride: 0 }; cfg.total_regs() as usize],
            vrf: vec![0; (cfg.vrf_slots * cfg.lanes) as usize],
            free: (0..cfg.vrf_slots).rev().collect(),
            victim: 0,
            resident: 0,
            stats: RfStats::default(),
            ever_nonnull: vec![0; cfg.warps as usize],
        }
    }

    /// The configuration.
    pub fn config(&self) -> &RfConfig {
        &self.cfg
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> RfStats {
        self.stats
    }

    /// Number of vectors currently resident in the VRF.
    pub fn vrf_resident(&self) -> u32 {
        self.resident
    }

    /// Highest number of architectural registers (out of `arch_regs`) that
    /// ever simultaneously held a non-null element in some warp. For the
    /// metadata register file this is "registers used to hold capabilities"
    /// (Figure 11).
    pub fn max_nonnull_regs(&self) -> u32 {
        self.ever_nonnull.iter().map(|m| m.count_ones()).max().unwrap_or(0)
    }

    /// Union over all warps of the registers that ever held a non-null
    /// element, as a bitmask (bit *r* = architectural register *r*). Used
    /// to verify the §4.3 capability-register-limit forecast.
    pub fn nonnull_mask_union(&self) -> u32 {
        self.ever_nonnull.iter().fold(0, |a, m| a | m)
    }

    /// Storage accounting for this configuration.
    pub fn storage(&self) -> RegFileStorage {
        RegFileStorage::for_config(&self.cfg)
    }

    #[inline]
    fn idx(&self, warp: u32, reg: u32) -> usize {
        debug_assert!(warp < self.cfg.warps && reg < self.cfg.arch_regs);
        (warp * self.cfg.arch_regs + reg) as usize
    }

    fn expand_into(&self, e: &Entry, out: &mut [u64]) {
        let lanes = self.cfg.lanes as usize;
        match *e {
            Entry::Scalar { base, stride: 0 } => out[..lanes].fill(base),
            Entry::Scalar { base, stride } => {
                // Affine vectors only arise in the 32-bit data register
                // file; the lane values advance modulo 2^32.
                for (i, o) in out[..lanes].iter_mut().enumerate() {
                    *o = (base as u32).wrapping_add((stride as i32 * i as i32) as u32) as u64;
                }
            }
            Entry::PartialNull { value, mask } => {
                let null = self.cfg.null_value.unwrap_or(0);
                for (i, o) in out[..lanes].iter_mut().enumerate() {
                    *o = if mask >> i & 1 == 1 { value } else { null };
                }
            }
            Entry::Vector { slot } => {
                let s = (slot * self.cfg.lanes) as usize;
                out[..lanes].copy_from_slice(&self.vrf[s..s + lanes]);
            }
            Entry::Spilled(ref data) => out[..lanes].copy_from_slice(data),
        }
    }

    /// Try to compress a full vector into an SRF entry.
    fn compress(&self, v: &[u64]) -> Option<Entry> {
        let base = v[0];
        if v.iter().all(|&x| x == base) {
            return Some(Entry::Scalar { base, stride: 0 });
        }
        if self.cfg.detect_affine && v.len() >= 2 {
            // 32-bit data domain: stride comparisons wrap modulo 2^32.
            let stride = (v[1] as u32).wrapping_sub(v[0] as u32) as i32 as i64;
            if (STRIDE_MIN..=STRIDE_MAX).contains(&stride)
                && v.windows(2)
                    .all(|w| (w[1] as u32).wrapping_sub(w[0] as u32) as i32 as i64 == stride)
            {
                return Some(Entry::Scalar { base, stride: stride as i8 });
            }
        }
        if let Some(null) = self.cfg.null_value {
            // One pass, no allocation: the non-null lanes must share one
            // value (an all-null vector is uniform and was caught above).
            let mut value = None;
            let mut mask = 0u64;
            for (i, &x) in v.iter().enumerate() {
                if x != null {
                    match value {
                        None => value = Some(x),
                        Some(v0) if v0 == x => {}
                        Some(_) => return None,
                    }
                    mask |= 1 << i;
                }
            }
            if let Some(value) = value {
                return Some(Entry::PartialNull { value, mask });
            }
        }
        None
    }

    /// Pick a VRF-resident victim (round-robin) and spill it.
    fn spill_one(&mut self) -> bool {
        let total = self.entries.len();
        for _ in 0..total {
            let i = self.victim;
            self.victim = (self.victim + 1) % total;
            if let Entry::Vector { slot } = self.entries[i] {
                let lanes = self.cfg.lanes as usize;
                let s = (slot * self.cfg.lanes) as usize;
                let data = self.vrf[s..s + lanes].to_vec();
                self.entries[i] = Entry::Spilled(data);
                self.free.push(slot);
                self.resident -= 1;
                self.stats.spills += 1;
                return true;
            }
        }
        false
    }

    /// Allocate a VRF slot, spilling if necessary. Returns (slot, spills).
    fn alloc_slot(&mut self) -> (u32, u32) {
        let mut spills = 0;
        if self.free.is_empty() {
            assert!(self.spill_one(), "VRF exhausted with nothing to spill");
            spills += 1;
        }
        let slot = self.free.pop().expect("slot after spill");
        self.resident += 1;
        self.stats.peak_resident = self.stats.peak_resident.max(self.resident);
        (slot, spills)
    }

    /// Ensure the entry at `idx` is VRF-resident; returns (fills, spills).
    fn fill(&mut self, idx: usize) -> (u32, u32) {
        if let Entry::Spilled(data) = self.entries[idx].clone() {
            let (slot, spills) = self.alloc_slot();
            let lanes = self.cfg.lanes as usize;
            let s = (slot * self.cfg.lanes) as usize;
            self.vrf[s..s + lanes].copy_from_slice(&data);
            self.entries[idx] = Entry::Vector { slot };
            self.stats.fills += 1;
            (1, spills)
        } else {
            (0, 0)
        }
    }

    /// Read a full vector register into `out` (one element per lane).
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the lane count.
    pub fn read(&mut self, warp: u32, reg: u32, out: &mut [u64]) -> ReadInfo {
        let idx = self.idx(warp, reg);
        let (fills, spills) = self.fill(idx);
        let e = &self.entries[idx];
        let from_vrf = matches!(e, Entry::Vector { .. });
        self.expand_into(e, out);
        ReadInfo { from_vrf, fills, spills }
    }

    /// Peek at a register without touching spill state (host/debug use).
    pub fn peek(&self, warp: u32, reg: u32, out: &mut [u64]) {
        self.expand_into(&self.entries[(warp * self.cfg.arch_regs + reg) as usize], out);
    }

    /// Write the active lanes (set bits of `mask`) of a vector register.
    /// Inactive lanes keep their old values. The write path re-runs the
    /// compressor on the merged vector, exactly like the hardware's array of
    /// comparators (Figure 5).
    pub fn write(&mut self, warp: u32, reg: u32, values: &[u64], mask: u64) -> WriteInfo {
        let lanes = self.cfg.lanes as usize;
        let full = mask & (u64::MAX >> (64 - lanes));
        if full == 0 {
            return WriteInfo { to_srf: true, ..WriteInfo::default() };
        }
        let idx = self.idx(warp, reg);

        if full == u64::MAX >> (64 - lanes) {
            // Full-mask write: the merged vector is `values` itself.
            return self.install(warp, reg, idx, &values[..lanes]);
        }
        // Merge with existing contents.
        let mut merged = [0u64; MAX_LANES];
        self.expand_into(&self.entries[idx], &mut merged);
        for i in 0..lanes {
            if full >> i & 1 == 1 {
                merged[i] = values[i];
            }
        }
        self.install(warp, reg, idx, &merged[..lanes])
    }

    /// Commit a fully-merged vector to the register: run the compressor and
    /// store the result in the SRF or the VRF (the tail of [`Self::write`]).
    fn install(&mut self, warp: u32, reg: u32, idx: usize, merged: &[u64]) -> WriteInfo {
        let lanes = self.cfg.lanes as usize;
        let null = self.cfg.null_value.unwrap_or(0);
        if merged.iter().any(|&x| x != null) {
            self.ever_nonnull[warp as usize] |= 1 << reg;
        }

        let mut info = WriteInfo::default();
        match self.compress(merged) {
            Some(new_entry) => {
                // Free any VRF slot the register was occupying.
                if let Entry::Vector { slot } = self.entries[idx] {
                    self.free.push(slot);
                    self.resident -= 1;
                }
                self.entries[idx] = new_entry;
                self.stats.scalar_writes += 1;
                info.to_srf = true;
            }
            None => {
                let slot = match self.entries[idx] {
                    Entry::Vector { slot } => slot,
                    _ => {
                        let (slot, spills) = self.alloc_slot();
                        info.spills += spills;
                        self.entries[idx] = Entry::Vector { slot };
                        slot
                    }
                };
                let s = (slot * self.cfg.lanes) as usize;
                self.vrf[s..s + lanes].copy_from_slice(merged);
                self.stats.vector_writes += 1;
            }
        }
        info
    }

    /// True when the register is currently uncompressed (VRF-resident or
    /// spilled), false when it lives compactly in the SRF.
    fn is_vector_class(&self, idx: usize) -> bool {
        matches!(self.entries[idx], Entry::Vector { .. } | Entry::Spilled(_))
    }

    /// Residency class of a register without touching spill state — what
    /// the execute stage's pre-issue classifier sees. Pure: repeated calls
    /// return the same answer until the register is written.
    pub fn class_of(&self, warp: u32, reg: u32) -> OperandClass {
        match self.entries[(warp * self.cfg.arch_regs + reg) as usize] {
            Entry::Scalar { stride: 0, .. } => OperandClass::Uniform,
            Entry::Scalar { .. } => OperandClass::Affine,
            Entry::PartialNull { .. } | Entry::Vector { .. } | Entry::Spilled(_) => {
                OperandClass::Vector
            }
        }
    }

    /// Read a register in its stored form, without expanding compact
    /// entries. Spill/fill behaviour and the returned [`ReadInfo`] are
    /// identical to [`Self::read`]; only the shape of the result differs —
    /// a `Scalar` SRF entry comes back as `Uniform`/`Affine` with **no**
    /// per-lane work, everything else is expanded into a `Vector`.
    pub fn read_compact(&mut self, warp: u32, reg: u32) -> (OperandVec, ReadInfo) {
        let idx = self.idx(warp, reg);
        let (fills, spills) = self.fill(idx);
        match self.entries[idx] {
            Entry::Scalar { base, stride: 0 } => {
                (OperandVec::Uniform(base), ReadInfo { from_vrf: false, fills, spills })
            }
            Entry::Scalar { base, stride } => (
                // `base` in the entry is the full first-written value; the
                // lane-0 contract truncates to the 32-bit data domain,
                // exactly as `expand_into` does.
                OperandVec::Affine { base: (base as u32) as u64, stride: stride as i64 },
                ReadInfo { from_vrf: false, fills, spills },
            ),
            ref e => {
                let from_vrf = matches!(e, Entry::Vector { .. });
                let lanes = self.cfg.lanes as usize;
                let mut out = vec![0u64; lanes];
                let e = e.clone();
                self.expand_into(&e, &mut out);
                (OperandVec::Vector(out.into_boxed_slice()), ReadInfo { from_vrf, fills, spills })
            }
        }
    }

    /// Write a register from its compact form, without re-running the
    /// compressor scan when the result is already known compact. For every
    /// `(value, mask)` this is **bit-identical** to expanding `value` and
    /// calling [`Self::write`] — same entry, same statistics, same
    /// [`WriteInfo`] (asserted by the `compact_*` unit tests below and the
    /// core's differential property test):
    ///
    /// * full-mask `Uniform` is a compact SRF store (uniform vectors always
    ///   compress, whatever the configuration);
    /// * full-mask `Affine` with a representable stride is a compact SRF
    ///   store when the file detects affine vectors (strides are compared
    ///   modulo 2³², like the compressor's comparators);
    /// * everything else — partial masks, `Vector` operands, out-of-range
    ///   strides — expands and takes the ordinary write path.
    pub fn write_compact(
        &mut self,
        warp: u32,
        reg: u32,
        value: &OperandVec,
        mask: u64,
    ) -> WriteInfo {
        let lanes = self.cfg.lanes as usize;
        let full_mask = u64::MAX >> (64 - lanes);
        if mask & full_mask == full_mask {
            // Normalise the compact forms: a one-lane or stride-≡-0 affine
            // is uniform over the active lanes (with `base` already the
            // lane-0 value by the contract).
            let norm = match *value {
                OperandVec::Affine { base, stride } => {
                    let stride = (stride as u32) as i32 as i64;
                    if stride == 0 || lanes == 1 {
                        Some(OperandVec::Uniform(base))
                    } else {
                        Some(OperandVec::Affine { base, stride })
                    }
                }
                OperandVec::Uniform(v) => Some(OperandVec::Uniform(v)),
                OperandVec::Vector(_) => None,
            };
            match norm {
                Some(OperandVec::Uniform(v)) => {
                    let idx = self.idx(warp, reg);
                    if v != self.cfg.null_value.unwrap_or(0) {
                        self.ever_nonnull[warp as usize] |= 1 << reg;
                    }
                    if let Entry::Vector { slot } = self.entries[idx] {
                        self.free.push(slot);
                        self.resident -= 1;
                    }
                    self.entries[idx] = Entry::Scalar { base: v, stride: 0 };
                    self.stats.scalar_writes += 1;
                    return WriteInfo { to_srf: true, ..WriteInfo::default() };
                }
                Some(OperandVec::Affine { base, stride })
                    if self.cfg.detect_affine && (STRIDE_MIN..=STRIDE_MAX).contains(&stride) =>
                {
                    let idx = self.idx(warp, reg);
                    // Two distinct lane values exist (stride ≢ 0, lanes ≥ 2),
                    // so some lane differs from the null value.
                    self.ever_nonnull[warp as usize] |= 1 << reg;
                    if let Entry::Vector { slot } = self.entries[idx] {
                        self.free.push(slot);
                        self.resident -= 1;
                    }
                    self.entries[idx] = Entry::Scalar { base, stride: stride as i8 };
                    self.stats.scalar_writes += 1;
                    return WriteInfo { to_srf: true, ..WriteInfo::default() };
                }
                _ => {}
            }
            // A full-mask `Vector` operand (or an unrepresentable affine)
            // is the merged result itself: skip the expand-and-merge.
            if let OperandVec::Vector(ref v) = *value {
                let idx = self.idx(warp, reg);
                return self.install(warp, reg, idx, &v[..lanes]);
            }
        }
        let mut buf = [0u64; MAX_LANES];
        value.expand_into(&mut buf[..lanes]);
        self.write(warp, reg, &buf, mask)
    }

    /// [`Self::write_compact`] with structured tracing — the compact
    /// counterpart of [`Self::write_traced`], emitting the same
    /// [`TraceEvent::RfTransition`] on residency-class changes.
    pub fn write_compact_traced(
        &mut self,
        warp: u32,
        reg: u32,
        value: &OperandVec,
        mask: u64,
        cycle: u64,
        sink: &mut dyn EventSink,
    ) -> WriteInfo {
        let idx = self.idx(warp, reg);
        let was_vector = self.is_vector_class(idx);
        let info = self.write_compact(warp, reg, value, mask);
        let is_vector = self.is_vector_class(idx);
        if was_vector != is_vector {
            sink.emit(TraceEvent::RfTransition {
                cycle,
                warp,
                rf: self.rf_kind(),
                reg,
                to_vector: is_vector,
            });
        }
        info
    }

    /// Which kind of register file this is, for trace attribution (33-bit
    /// elements mark the capability-metadata file).
    fn rf_kind(&self) -> RfKind {
        if self.cfg.elem_bits >= 33 {
            RfKind::Meta
        } else {
            RfKind::Data
        }
    }

    /// [`Self::write`] with structured tracing: emits one
    /// [`TraceEvent::RfTransition`] whenever the written register changes
    /// residency class — compact SRF entry to VRF vector or back. For the
    /// metadata register file this is the event stream of the null-value
    /// optimisation (NVO): each `to_vector == false` event is a vector the
    /// compressor reclaimed.
    pub fn write_traced(
        &mut self,
        warp: u32,
        reg: u32,
        values: &[u64],
        mask: u64,
        cycle: u64,
        sink: &mut dyn EventSink,
    ) -> WriteInfo {
        let idx = self.idx(warp, reg);
        let was_vector = self.is_vector_class(idx);
        let info = self.write(warp, reg, values, mask);
        let is_vector = self.is_vector_class(idx);
        if was_vector != is_vector {
            sink.emit(TraceEvent::RfTransition {
                cycle,
                warp,
                rf: self.rf_kind(),
                reg,
                to_vector: is_vector,
            });
        }
        info
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RfConfig {
        RfConfig::data(2, 8, 4)
    }

    fn vals(f: impl Fn(usize) -> u64) -> Vec<u64> {
        (0..8).map(f).collect()
    }

    #[test]
    fn uniform_and_affine_stay_scalar() {
        let mut rf = CompressedRegFile::new(cfg());
        rf.write(0, 1, &vals(|_| 42), u64::MAX);
        rf.write(0, 2, &vals(|i| 100 + 4 * i as u64), u64::MAX);
        assert_eq!(rf.vrf_resident(), 0);
        let mut out = [0u64; 8];
        assert!(!rf.read(0, 2, &mut out).from_vrf);
        assert_eq!(out[7], 128);
    }

    #[test]
    fn negative_stride_and_wraparound() {
        let mut rf = CompressedRegFile::new(cfg());
        // Values are 32-bit data, zero-extended into the 64-bit elements.
        rf.write(0, 1, &vals(|i| (10i32 - 2 * i as i32) as u32 as u64), u64::MAX);
        assert_eq!(rf.vrf_resident(), 0);
        let mut out = [0u64; 8];
        rf.read(0, 1, &mut out);
        assert_eq!(out[6], (-2i32) as u32 as u64);
    }

    #[test]
    fn irregular_goes_to_vrf() {
        let mut rf = CompressedRegFile::new(cfg());
        rf.write(0, 3, &vals(|i| (i * i) as u64), u64::MAX);
        assert_eq!(rf.vrf_resident(), 1);
        let mut out = [0u64; 8];
        assert!(rf.read(0, 3, &mut out).from_vrf);
        assert_eq!(out[5], 25);
    }

    #[test]
    fn large_stride_is_not_compressible() {
        let mut rf = CompressedRegFile::new(cfg());
        rf.write(0, 3, &vals(|i| 1000 * i as u64), u64::MAX);
        assert_eq!(rf.vrf_resident(), 1, "stride 1000 exceeds the 6-bit field");
    }

    #[test]
    fn partial_write_expands_scalar() {
        let mut rf = CompressedRegFile::new(cfg());
        rf.write(0, 4, &vals(|_| 7), u64::MAX);
        // Overwrite lanes 0..4 with something irregular.
        rf.write(0, 4, &vals(|i| (i * 13) as u64), 0x0F);
        let mut out = [0u64; 8];
        assert!(rf.read(0, 4, &mut out).from_vrf);
        assert_eq!(&out[..8], &[0, 13, 26, 39, 7, 7, 7, 7]);
    }

    #[test]
    fn partial_uniform_overwrite_recompresses() {
        let mut rf = CompressedRegFile::new(cfg());
        rf.write(0, 4, &vals(|i| (i * i) as u64), u64::MAX);
        assert_eq!(rf.vrf_resident(), 1);
        // Full overwrite with a uniform value frees the slot.
        rf.write(0, 4, &vals(|_| 5), u64::MAX);
        assert_eq!(rf.vrf_resident(), 0);
    }

    #[test]
    fn spill_and_fill_roundtrip() {
        let mut rf = CompressedRegFile::new(cfg()); // 4 slots
        for r in 0..6 {
            rf.write(0, r, &vals(|i| (i as u64) * 97 + r as u64), u64::MAX);
        }
        assert!(rf.stats().spills >= 2);
        // All six registers still read back correctly.
        let mut out = [0u64; 8];
        for r in 0..6 {
            rf.read(0, r, &mut out);
            assert_eq!(out[3], 3 * 97 + r as u64, "reg {r}");
        }
        assert!(rf.stats().fills >= 2);
    }

    #[test]
    fn nvo_keeps_partially_null_uniform_in_srf() {
        let mut rf = CompressedRegFile::new(RfConfig::meta(1, 8, 4, true));
        // A uniform metadata vector...
        rf.write(0, 5, &vals(|_| 0x1_2345_6789), u64::MAX);
        assert_eq!(rf.vrf_resident(), 0);
        // ...partially overwritten with null stays in the SRF (rule 1)...
        rf.write(0, 5, &vals(|_| NULL_META), 0x0F);
        assert_eq!(rf.vrf_resident(), 0);
        let mut out = [0u64; 8];
        rf.read(0, 5, &mut out);
        assert_eq!(
            &out[..8],
            &[0, 0, 0, 0, 0x1_2345_6789, 0x1_2345_6789, 0x1_2345_6789, 0x1_2345_6789]
        );
        // ...and partially overwritten again with the same uniform value
        // also stays (rule 3).
        rf.write(0, 5, &vals(|_| 0x1_2345_6789), 0x03);
        assert_eq!(rf.vrf_resident(), 0);
    }

    #[test]
    fn without_nvo_partial_null_goes_to_vrf() {
        let mut rf = CompressedRegFile::new(RfConfig::meta(1, 8, 4, false));
        rf.write(0, 5, &vals(|_| 0x1_2345_6789), u64::MAX);
        rf.write(0, 5, &vals(|_| NULL_META), 0x0F);
        assert_eq!(rf.vrf_resident(), 1);
    }

    #[test]
    fn nvo_two_distinct_values_still_diverge() {
        let mut rf = CompressedRegFile::new(RfConfig::meta(1, 8, 4, true));
        rf.write(0, 5, &vals(|_| 0x111), u64::MAX);
        rf.write(0, 5, &vals(|_| 0x222), 0x0F);
        assert_eq!(rf.vrf_resident(), 1, "two non-null values cannot share an NVO entry");
    }

    #[test]
    fn meta_rf_does_not_detect_affine() {
        let mut rf = CompressedRegFile::new(RfConfig::meta(1, 8, 4, true));
        rf.write(0, 6, &vals(|i| i as u64), u64::MAX);
        assert_eq!(rf.vrf_resident(), 1);
    }

    #[test]
    fn cap_register_watermark() {
        let mut rf = CompressedRegFile::new(RfConfig::meta(2, 8, 4, true));
        rf.write(0, 3, &vals(|_| 0x1_0000_0000), u64::MAX);
        rf.write(0, 9, &vals(|_| 0x1_0000_0000), u64::MAX);
        rf.write(1, 3, &vals(|_| 0x1_0000_0000), u64::MAX);
        // Null writes don't count.
        rf.write(1, 4, &vals(|_| NULL_META), u64::MAX);
        assert_eq!(rf.max_nonnull_regs(), 2);
    }

    #[test]
    fn traced_writes_emit_residency_transitions() {
        use simt_trace::VecSink;
        let mut rf = CompressedRegFile::new(RfConfig::meta(1, 8, 4, true));
        let mut sink = VecSink::new();
        // Uniform write: stays scalar, no transition.
        rf.write_traced(0, 5, &vals(|_| 0x111), u64::MAX, 10, &mut sink);
        assert!(sink.events().is_empty());
        // Divergent write: scalar → vector.
        rf.write_traced(0, 5, &vals(|i| i as u64), u64::MAX, 20, &mut sink);
        // Uniform overwrite: vector → scalar (NVO reclaim).
        rf.write_traced(0, 5, &vals(|_| NULL_META), u64::MAX, 30, &mut sink);
        let evs: Vec<_> = sink.events().to_vec();
        assert_eq!(evs.len(), 2);
        match (evs[0], evs[1]) {
            (
                TraceEvent::RfTransition {
                    cycle: 20,
                    warp: 0,
                    rf: RfKind::Meta,
                    reg: 5,
                    to_vector: true,
                },
                TraceEvent::RfTransition {
                    cycle: 30,
                    warp: 0,
                    rf: RfKind::Meta,
                    reg: 5,
                    to_vector: false,
                },
            ) => {}
            other => panic!("unexpected events: {other:?}"),
        }
    }

    /// `write_compact` must be bit-identical to expand-then-`write` on two
    /// clones of the same file: same read-back, same entry class, same
    /// statistics, same `WriteInfo`.
    fn assert_write_equivalent(cfg: RfConfig, value: &OperandVec, mask: u64) {
        let lanes = cfg.lanes as usize;
        let mut compact = CompressedRegFile::new(cfg);
        let mut classic = CompressedRegFile::new(cfg);
        // Pre-occupy the register with an irregular vector so slot-freeing
        // behaviour is exercised too.
        let junk: Vec<u64> = (0..lanes as u64).map(|i| i * i + 3).collect();
        compact.write(0, 9, &junk, u64::MAX);
        classic.write(0, 9, &junk, u64::MAX);

        let info_c = compact.write_compact(0, 9, value, mask);
        let mut expanded = vec![0u64; lanes];
        value.expand_into(&mut expanded);
        let info_v = classic.write(0, 9, &expanded, mask);

        assert_eq!(info_c, info_v, "{value:?} mask {mask:#x}");
        assert_eq!(compact.stats(), classic.stats(), "{value:?} mask {mask:#x}");
        assert_eq!(compact.vrf_resident(), classic.vrf_resident());
        assert_eq!(compact.class_of(0, 9), classic.class_of(0, 9));
        assert_eq!(compact.max_nonnull_regs(), classic.max_nonnull_regs());
        let (mut a, mut b) = (vec![0u64; lanes], vec![0u64; lanes]);
        compact.read(0, 9, &mut a);
        classic.read(0, 9, &mut b);
        assert_eq!(a, b, "{value:?} mask {mask:#x}");
    }

    #[test]
    fn compact_writes_match_classic_writes() {
        for mask in [u64::MAX, 0x0F, 0] {
            for value in [
                OperandVec::Uniform(0),
                OperandVec::Uniform(42),
                OperandVec::Affine { base: 100, stride: 4 },
                OperandVec::Affine { base: 7, stride: -3 },
                OperandVec::Affine { base: 1, stride: 1000 }, // out of range
                OperandVec::Affine { base: 5, stride: 0 },    // uniform in disguise
                OperandVec::Affine { base: 3, stride: u32::MAX as i64 }, // ≡ -1 mod 2³²
                OperandVec::Vector((0..8).map(|i| i * i).collect()),
                OperandVec::Vector(vec![9; 8].into_boxed_slice()),
            ] {
                assert_write_equivalent(cfg(), &value, mask);
            }
            // Metadata file: no affine detection, NVO on and off.
            for nvo in [true, false] {
                for value in [
                    OperandVec::Uniform(NULL_META),
                    OperandVec::Uniform(0x1_2345_6789),
                    OperandVec::Affine { base: 2, stride: 1 }, // must fall back
                ] {
                    assert_write_equivalent(RfConfig::meta(1, 8, 4, nvo), &value, mask);
                }
            }
        }
    }

    #[test]
    fn compact_reads_match_classic_reads() {
        let mut rf = CompressedRegFile::new(cfg());
        rf.write(0, 1, &vals(|_| 77), u64::MAX);
        rf.write(0, 2, &vals(|i| 50 + 2 * i as u64), u64::MAX);
        rf.write(0, 3, &vals(|i| (i * i) as u64), u64::MAX);
        assert_eq!(rf.class_of(0, 1), OperandClass::Uniform);
        assert_eq!(rf.class_of(0, 2), OperandClass::Affine);
        assert_eq!(rf.class_of(0, 3), OperandClass::Vector);
        for reg in 1..=3 {
            let (v, info_c) = rf.clone().read_compact(0, reg);
            let mut classic = [0u64; 8];
            let info_v = rf.read(0, reg, &mut classic);
            assert_eq!(info_c, info_v, "reg {reg}");
            let mut expanded = [0u64; 8];
            v.expand_into(&mut expanded);
            assert_eq!(expanded, classic, "reg {reg}");
        }
        assert!(matches!(rf.clone().read_compact(0, 1).0, OperandVec::Uniform(77)));
        assert!(matches!(
            rf.clone().read_compact(0, 2).0,
            OperandVec::Affine { base: 50, stride: 2 }
        ));
    }

    #[test]
    fn compact_read_fills_spilled_registers() {
        let mut rf = CompressedRegFile::new(cfg()); // 4 slots
        for r in 0..6 {
            rf.write(0, r, &vals(|i| (i as u64) * 97 + r as u64), u64::MAX);
        }
        // Register 0 was spilled; a compact read fills it like `read`.
        let spilled: Vec<u32> =
            (0..6).filter(|&r| rf.class_of(0, r) == OperandClass::Vector).collect();
        let r = spilled[0];
        let (v, info) = rf.read_compact(0, r);
        assert!(info.fills > 0 || info.from_vrf);
        let mut out = [0u64; 8];
        v.expand_into(&mut out);
        assert_eq!(out[3], 3 * 97 + r as u64);
    }

    #[test]
    fn compact_traced_writes_emit_residency_transitions() {
        use simt_trace::VecSink;
        let mut rf = CompressedRegFile::new(cfg());
        let mut sink = VecSink::new();
        rf.write_traced(0, 5, &vals(|i| (i * i) as u64), u64::MAX, 10, &mut sink);
        assert_eq!(sink.events().len(), 1);
        // Compact uniform overwrite: vector → scalar transition.
        rf.write_compact_traced(0, 5, &OperandVec::Uniform(3), u64::MAX, 20, &mut sink);
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert!(matches!(
            evs[1],
            TraceEvent::RfTransition { cycle: 20, reg: 5, to_vector: false, .. }
        ));
    }

    #[test]
    fn zero_mask_write_is_a_nop() {
        let mut rf = CompressedRegFile::new(cfg());
        rf.write(0, 7, &vals(|i| i as u64 * 1001), 0);
        assert_eq!(rf.vrf_resident(), 0);
        let mut out = [0u64; 8];
        rf.read(0, 7, &mut out);
        assert_eq!(out, [0u64; 8]);
    }
}
