//! Bit-exact storage accounting for compressed register files.
//!
//! This drives Table 2 (baseline register-file compression), the 14% / 7%
//! metadata-SRF overhead numbers of Section 4.3, and the Block-RAM column of
//! Table 3.
//!
//! An SRF entry needs its value field (32-bit base for data, 33-bit metadata
//! value), a 6-bit stride (data only), a 2-bit kind tag, and — with the
//! null-value optimisation — a lane mask. The baseline SRF is stored twice
//! (two 2-port SRAMs providing three read ports); the metadata SRF is
//! single-copy (one read port, with `CSC` paying an extra cycle).

use crate::RfConfig;

/// Field widths of one SRF entry for a given configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrfEntryBits {
    /// Value field (base / metadata).
    pub value: u32,
    /// Stride field (0 when affine detection is off).
    pub stride: u32,
    /// Entry kind (scalar / vector-pointer / spilled).
    pub kind: u32,
    /// NVO lane mask (0 when NVO is off).
    pub null_mask: u32,
}

impl SrfEntryBits {
    /// Total bits per entry.
    pub fn total(&self) -> u32 {
        self.value + self.stride + self.kind + self.null_mask
    }
}

/// Storage accounting for one register file instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegFileStorage {
    /// SRF bits (all copies).
    pub srf_bits: u64,
    /// VRF bits.
    pub vrf_bits: u64,
    /// Free-stack bits.
    pub free_stack_bits: u64,
}

impl RegFileStorage {
    /// Account for `cfg`.
    pub fn for_config(cfg: &RfConfig) -> Self {
        let entry = SrfEntryBits {
            value: if cfg.elem_bits > 32 { cfg.elem_bits } else { 32 },
            stride: if cfg.detect_affine { 6 } else { 0 },
            kind: 2,
            null_mask: if cfg.null_value.is_some() { cfg.lanes } else { 0 },
        };
        let slots = cfg.vrf_slots.max(1);
        RegFileStorage {
            srf_bits: cfg.total_regs() as u64 * entry.total() as u64 * cfg.srf_copies as u64,
            vrf_bits: cfg.vrf_slots as u64 * cfg.lanes as u64 * cfg.elem_bits as u64,
            free_stack_bits: cfg.vrf_slots as u64
                * (32 - (slots - 1).leading_zeros()).max(1) as u64,
        }
    }

    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.srf_bits + self.vrf_bits + self.free_stack_bits
    }

    /// Total size in kilobits (as reported in Table 2 / Table 3).
    pub fn kilobits(&self) -> f64 {
        self.total_bits() as f64 / 1024.0
    }
}

#[allow(dead_code)] // used by the sim-area crate and tests
/// Bits of an *uncompressed* register file of the same geometry — the
/// denominator of Table 2's compression ratio.
pub fn uncompressed_bits(warps: u32, lanes: u32, arch_regs: u32, elem_bits: u32) -> u64 {
    warps as u64 * lanes as u64 * arch_regs as u64 * elem_bits as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduce the storage column of Table 2 (64 warps × 32 lanes).
    #[test]
    fn table2_storage_column() {
        for (slots, paper_kb) in [(1024u32, 1202.0f64), (768, 937.0), (512, 672.0)] {
            let cfg = RfConfig::data(64, 32, slots);
            let s = RegFileStorage::for_config(&cfg);
            let kb = s.kilobits();
            let err = (kb - paper_kb).abs() / paper_kb;
            assert!(err < 0.02, "slots={slots}: model {kb:.0} Kb vs paper {paper_kb} Kb");
        }
    }

    /// Compression ratio against the 2048-Kb uncompressed baseline.
    #[test]
    fn table2_compress_ratio() {
        let uncompressed = uncompressed_bits(64, 32, 32, 32) as f64 / 1024.0;
        assert_eq!(uncompressed, 2048.0);
        let cfg = RfConfig::data(64, 32, 768);
        let ratio = RegFileStorage::for_config(&cfg).kilobits() / uncompressed;
        assert!((ratio - 0.45).abs() < 0.02, "ratio {ratio:.3} vs paper 0.45");
    }

    /// The metadata SRF (with NVO) costs ~14% of the compressed baseline
    /// register file (Section 4.3), and halving the number of capability
    /// registers would bring it to ~7%.
    #[test]
    fn metadata_srf_overhead() {
        let baseline = RegFileStorage::for_config(&RfConfig::data(64, 32, 768)).kilobits();
        // Shared VRF: the metadata RF adds only its SRF.
        let meta = RegFileStorage::for_config(&RfConfig::meta(64, 32, 0, true));
        let overhead = meta.srf_bits as f64 / 1024.0 / baseline;
        assert!((overhead - 0.14).abs() < 0.01, "overhead {overhead:.3} vs paper 0.14");
        assert!((overhead / 2.0 - 0.07).abs() < 0.01);
    }

    #[test]
    fn entry_bit_fields() {
        let data = RfConfig::data(64, 32, 768);
        let s = RegFileStorage::for_config(&data);
        // 2048 entries x 40 bits x 2 copies
        assert_eq!(s.srf_bits, 2048 * 40 * 2);
        let meta = RfConfig::meta(64, 32, 0, true);
        let s = RegFileStorage::for_config(&meta);
        // 2048 entries x (33 + 2 + 32) bits x 1 copy
        assert_eq!(s.srf_bits, 2048 * 67);
    }
}
