//! The compressed register file must be observationally equivalent to a
//! plain uncompressed register file under any sequence of masked writes and
//! reads — compression, NVO, spilling, and filling are pure optimisations.
//! Driven by a seeded deterministic PRNG (the workspace builds offline, so
//! no proptest).

use sim_prng::Prng;
use simt_regfile::{CompressedRegFile, RfConfig, NULL_META};

const WARPS: u32 = 2;
const LANES: usize = 8;
const REGS: u32 = 8;
const RUNS: usize = 256;

#[derive(Debug, Clone)]
enum Op {
    Write { warp: u32, reg: u32, values: Vec<u64>, mask: u64 },
    Read { warp: u32, reg: u32 },
}

/// Lane value biased towards the compressible cases (NULL, a repeated
/// scalar, small affine strides) with a tail of arbitrary 33-bit values.
fn value(r: &mut Prng) -> u64 {
    match r.range_u32(0, 10) {
        0..=2 => NULL_META,
        3..=5 => 0xAB_CDEF_0123u64 & 0x1_FFFF_FFFF,
        6 | 7 => 0x1_0000_0000 | r.range_u64(0, 4),
        _ => r.next_u64() & 0x1_FFFF_FFFF,
    }
}

fn op(r: &mut Prng) -> Op {
    if r.next_bool() {
        Op::Write {
            warp: r.range_u32(0, WARPS),
            reg: r.range_u32(0, REGS),
            values: (0..LANES).map(|_| value(r)).collect(),
            mask: r.next_u64(),
        }
    } else {
        Op::Read { warp: r.range_u32(0, WARPS), reg: r.range_u32(0, REGS) }
    }
}

fn ops(r: &mut Prng) -> Vec<Op> {
    let n = r.range_usize(1, 200);
    (0..n).map(|_| op(r)).collect()
}

fn run_equivalence(cfg: RfConfig, ops: Vec<Op>) {
    let mut rf = CompressedRegFile::new(cfg);
    let mut reference = vec![vec![0u64; LANES]; (WARPS * 32) as usize];
    for o in ops {
        match o {
            Op::Write { warp, reg, values, mask } => {
                rf.write(warp, reg, &values, mask);
                let r = &mut reference[(warp * 32 + reg) as usize];
                for i in 0..LANES {
                    if mask >> i & 1 == 1 {
                        r[i] = values[i];
                    }
                }
            }
            Op::Read { warp, reg } => {
                let mut out = [0u64; 64];
                rf.read(warp, reg, &mut out);
                assert_eq!(
                    &out[..LANES],
                    &reference[(warp * 32 + reg) as usize][..],
                    "warp {warp} reg {reg}"
                );
            }
        }
    }
    // Final sweep: every register matches.
    for warp in 0..WARPS {
        for reg in 0..REGS {
            let mut out = [0u64; 64];
            rf.read(warp, reg, &mut out);
            assert_eq!(&out[..LANES], &reference[(warp * 32 + reg) as usize][..]);
        }
    }
}

/// Metadata register file with NVO and a tiny VRF (heavy spilling).
#[test]
fn meta_nvo_equivalence() {
    let mut r = Prng::seed_from_u64(0x2F_0001);
    for _ in 0..RUNS {
        run_equivalence(RfConfig::meta(WARPS, LANES as u32, 2, true), ops(&mut r));
    }
}

/// Metadata register file without NVO.
#[test]
fn meta_plain_equivalence() {
    let mut r = Prng::seed_from_u64(0x2F_0002);
    for _ in 0..RUNS {
        run_equivalence(RfConfig::meta(WARPS, LANES as u32, 3, false), ops(&mut r));
    }
}

/// Data register file with affine detection (lane values masked to the
/// 32-bit data width).
#[test]
fn data_equivalence() {
    let mut r = Prng::seed_from_u64(0x2F_0003);
    for _ in 0..RUNS {
        let ops = ops(&mut r)
            .into_iter()
            .map(|o| match o {
                Op::Write { warp, reg, values, mask } => Op::Write {
                    warp,
                    reg,
                    values: values.into_iter().map(|v| v & 0xFFFF_FFFF).collect(),
                    mask,
                },
                read => read,
            })
            .collect();
        run_equivalence(RfConfig::data(WARPS, LANES as u32, 4), ops);
    }
}
