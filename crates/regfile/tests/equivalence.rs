//! The compressed register file must be observationally equivalent to a
//! plain uncompressed register file under any sequence of masked writes and
//! reads — compression, NVO, spilling, and filling are pure optimisations.

use proptest::prelude::*;
use simt_regfile::{CompressedRegFile, RfConfig, NULL_META};

const WARPS: u32 = 2;
const LANES: usize = 8;
const REGS: u32 = 8;

#[derive(Debug, Clone)]
enum Op {
    Write { warp: u32, reg: u32, values: Vec<u64>, mask: u64 },
    Read { warp: u32, reg: u32 },
}

fn value() -> impl Strategy<Value = u64> {
    prop_oneof![
        3 => Just(NULL_META),
        3 => Just(0xAB_CDEF_0123u64 & 0x1_FFFF_FFFF),
        2 => (0u64..4).prop_map(|x| 0x1_0000_0000 | x),
        2 => any::<u64>().prop_map(|x| x & 0x1_FFFF_FFFF),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..WARPS,
            0..REGS,
            prop::collection::vec(value(), LANES),
            any::<u64>(),
        )
            .prop_map(|(warp, reg, values, mask)| Op::Write { warp, reg, values, mask }),
        (0..WARPS, 0..REGS).prop_map(|(warp, reg)| Op::Read { warp, reg }),
    ]
}

fn run_equivalence(cfg: RfConfig, ops: Vec<Op>) {
    let mut rf = CompressedRegFile::new(cfg);
    let mut reference =
        vec![vec![0u64; LANES]; (WARPS * 32) as usize];
    for o in ops {
        match o {
            Op::Write { warp, reg, values, mask } => {
                rf.write(warp, reg, &values, mask);
                let r = &mut reference[(warp * 32 + reg) as usize];
                for i in 0..LANES {
                    if mask >> i & 1 == 1 {
                        r[i] = values[i];
                    }
                }
            }
            Op::Read { warp, reg } => {
                let mut out = [0u64; 64];
                rf.read(warp, reg, &mut out);
                assert_eq!(
                    &out[..LANES],
                    &reference[(warp * 32 + reg) as usize][..],
                    "warp {warp} reg {reg}"
                );
            }
        }
    }
    // Final sweep: every register matches.
    for warp in 0..WARPS {
        for reg in 0..REGS {
            let mut out = [0u64; 64];
            rf.read(warp, reg, &mut out);
            assert_eq!(&out[..LANES], &reference[(warp * 32 + reg) as usize][..]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Metadata register file with NVO and a tiny VRF (heavy spilling).
    #[test]
    fn meta_nvo_equivalence(ops in prop::collection::vec(op(), 1..200)) {
        run_equivalence(RfConfig::meta(WARPS, LANES as u32, 2, true), ops);
    }

    /// Metadata register file without NVO.
    #[test]
    fn meta_plain_equivalence(ops in prop::collection::vec(op(), 1..200)) {
        run_equivalence(RfConfig::meta(WARPS, LANES as u32, 3, false), ops);
    }

    /// Data register file with affine detection (values masked to 32 bits
    /// by construction of the strategy is not guaranteed, so mask here).
    #[test]
    fn data_equivalence(ops in prop::collection::vec(op(), 1..200)) {
        let ops = ops
            .into_iter()
            .map(|o| match o {
                Op::Write { warp, reg, values, mask } => Op::Write {
                    warp,
                    reg,
                    values: values.into_iter().map(|v| v & 0xFFFF_FFFF).collect(),
                    mask,
                },
                r => r,
            })
            .collect();
        run_equivalence(RfConfig::data(WARPS, LANES as u32, 4), ops);
    }
}
