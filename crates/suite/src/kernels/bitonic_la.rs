//! BitonicLa: bitonic sort of a large array in global memory, one kernel
//! launch per (k, j) phase (the host drives the phase loop, as global
//! synchronisation between blocks is impossible).

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// One compare-exchange phase over the whole array, grid-stride.
pub struct BitonicLa;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("BitonicLa");
    let n = k.param_u32("n");
    let kk = k.param_u32("k");
    let j = k.param_u32("j");
    let data = k.param_ptr("data", Elem::U32);
    let i = k.var_u32("i");
    let ixj = k.var_u32("ixj");
    let va = k.var_u32("va");
    let vb = k.var_u32("vb");
    k.for_(i.clone(), k.global_id(), n, k.global_threads(), |k| {
        k.assign(&ixj, i.clone() ^ j.clone());
        k.if_(ixj.clone().gt(i.clone()), |k| {
            k.assign(&va, data.at(i.clone()));
            k.assign(&vb, data.at(ixj.clone()));
            let dir_up = (i.clone() & kk.clone()).eq_(Expr::u32(0));
            let out_of_order = va.clone().gt(vb.clone()).eq_(dir_up);
            k.if_(out_of_order & va.clone().ne_(vb.clone()), |k| {
                k.store(&data, i.clone(), vb.clone());
                k.store(&data, ixj.clone(), va.clone());
            });
        });
    });
    k.finish()
}

impl NoclBench for BitonicLa {
    fn name(&self) -> &'static str {
        "BitonicLa"
    }

    fn description(&self) -> &'static str {
        "Bitonic sorter (large arrays)"
    }

    fn origin(&self) -> &'static str {
        "NVIDIA OpenCL SDK"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let n: u32 = match scale {
            Scale::Test => 1_024,
            Scale::Paper => 16_384,
        };
        let xs = rand_u32s(0xB171, n as usize);
        let mut want = xs.clone();
        want.sort_unstable();

        let data = gpu.alloc_from(&xs);
        let bd = block_dim(gpu, 256);
        let grid = (n / bd).clamp(1, 16);
        let kern = kernel();
        let mut total: Option<KernelStats> = None;
        let mut kk = 2u32;
        while kk <= n {
            let mut j = kk >> 1;
            while j > 0 {
                let stats = gpu.launch(
                    &kern,
                    Launch::new(grid, bd),
                    &[n.into(), kk.into(), j.into(), (&data).into()],
                )?;
                match &mut total {
                    Some(t) => t.accumulate(&stats),
                    None => total = Some(stats),
                }
                j >>= 1;
            }
            kk <<= 1;
        }
        check_eq("BitonicLa", &gpu.read(&data), &want)?;
        Ok(total.expect("at least one phase"))
    }
}
