//! BitonicSm: bitonic sort of small arrays, one segment per block, entirely
//! in shared memory.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// Each block sorts a `2×blockDim` segment of `u32` keys ascending; every
/// thread handles two compare-exchange elements per step.
pub struct BitonicSm;

pub(crate) fn kernel(bd: u32) -> Kernel {
    let seg = 2 * bd;
    let mut k = KernelBuilder::new(&format!("BitonicSm{bd}"));
    let input = k.param_ptr("in", Elem::U32);
    let out = k.param_ptr("out", Elem::U32);
    let sh = k.shared("keys", Elem::U32, seg);
    let base = k.var_u32("base");
    k.assign(&base, k.block_idx() * Expr::u32(seg));
    k.store(&sh, k.thread_idx(), input.at(base.clone() + k.thread_idx()));
    k.store(
        &sh,
        k.thread_idx() + Expr::u32(bd),
        input.at(base.clone() + k.thread_idx() + Expr::u32(bd)),
    );
    k.barrier();
    let kk = k.var_u32("k");
    let j = k.var_u32("j");
    let i = k.var_u32("i");
    let ixj = k.var_u32("ixj");
    let va = k.var_u32("va");
    let vb = k.var_u32("vb");
    k.assign(&kk, Expr::u32(2));
    k.while_(kk.clone().le(Expr::u32(seg)), |k| {
        k.assign(&j, kk.clone() >> Expr::u32(1));
        k.while_(j.clone().gt(Expr::u32(0)), |k| {
            // Each thread visits elements threadIdx and threadIdx + bd.
            k.for_(i.clone(), k.thread_idx(), Expr::u32(seg), Expr::u32(bd), |k| {
                k.assign(&ixj, i.clone() ^ j.clone());
                k.if_(ixj.clone().gt(i.clone()), |k| {
                    k.assign(&va, sh.at(i.clone()));
                    k.assign(&vb, sh.at(ixj.clone()));
                    // Ascending when (i & k) == 0.
                    let dir_up = (i.clone() & kk.clone()).eq_(Expr::u32(0));
                    let out_of_order = va.clone().gt(vb.clone()).eq_(dir_up);
                    k.if_(out_of_order & va.clone().ne_(vb.clone()), |k| {
                        k.store(&sh, i.clone(), vb.clone());
                        k.store(&sh, ixj.clone(), va.clone());
                    });
                });
            });
            k.barrier();
            k.assign(&j, j.clone() >> Expr::u32(1));
        });
        k.assign(&kk, kk.clone() << Expr::u32(1));
    });
    k.store(&out, base.clone() + k.thread_idx(), sh.at(k.thread_idx()));
    k.store(&out, base + k.thread_idx() + Expr::u32(bd), sh.at(k.thread_idx() + Expr::u32(bd)));
    k.finish()
}

impl NoclBench for BitonicSm {
    fn name(&self) -> &'static str {
        "BitonicSm"
    }

    fn description(&self) -> &'static str {
        "Bitonic sorter (small arrays)"
    }

    fn origin(&self) -> &'static str {
        "NVIDIA OpenCL SDK"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel(128)
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let bd = block_dim(gpu, 128);
        let seg = 2 * bd;
        let grid: u32 = match scale {
            Scale::Test => 4,
            Scale::Paper => 16,
        };
        let n = grid * seg;
        let xs = rand_u32s(0xB170, n as usize);
        let mut want = xs.clone();
        for s in want.chunks_mut(seg as usize) {
            s.sort_unstable();
        }

        let input = gpu.alloc_from(&xs);
        let out = gpu.alloc::<u32>(n);
        let stats =
            gpu.launch(&kernel(bd), Launch::new(grid, bd), &[(&input).into(), (&out).into()])?;
        check_eq("BitonicSm", &gpu.read(&out), &want)?;
        Ok(stats)
    }
}
