//! BlkStencil: block-based 1D stencil through a shared tile, with the
//! pointer-select halo pattern that the paper identifies as the source of
//! capability-metadata divergence (Section 4.3).

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// Three-point stencil: each block stages its segment in shared memory;
/// edge threads read their halo neighbour through a pointer that was
/// *selected* between a global and a shared buffer — the compiler transform
/// the paper observed ("control-flow divergence into pointer-value
/// divergence").
pub struct BlkStencil;

pub(crate) fn kernel(bd: u32) -> Kernel {
    let mut k = KernelBuilder::new(&format!("BlkStencil{bd}"));
    // `input` has n + 2 elements (global halo); `out` has n.
    let input = k.param_ptr("in", Elem::I32);
    let out = k.param_ptr("out", Elem::I32);
    let tile = k.shared("tile", Elem::I32, bd);
    let g = k.var_u32("g");
    let p = k.var_ptr("p", Elem::I32);
    let q = k.var_ptr("q", Elem::I32);
    k.assign(&g, k.global_id());
    k.store(&tile, k.thread_idx(), input.at(g.clone() + Expr::u32(1)));
    k.barrier();
    // Left neighbour: shared for interior threads, global for thread 0.
    k.if_else(
        k.thread_idx().eq_(Expr::u32(0)),
        |k| {
            let input = input.clone();
            k.assign(&p, input.offset(g.clone()));
        },
        |k| {
            let tile = tile.clone();
            k.assign(&p, tile.offset(k.thread_idx() - Expr::u32(1)));
        },
    );
    // Right neighbour: shared for interior threads, global for the last.
    k.if_else(
        k.thread_idx().eq_(Expr::u32(bd - 1)),
        |k| {
            let input = input.clone();
            k.assign(&q, input.offset(g.clone() + Expr::u32(2)));
        },
        |k| {
            let tile = tile.clone();
            k.assign(&q, tile.offset(k.thread_idx() + Expr::u32(1)));
        },
    );
    let centre = tile.at(k.thread_idx());
    k.store(&out, g.clone(), p.at(Expr::u32(0)) + centre + q.at(Expr::u32(0)));
    k.finish()
}

impl NoclBench for BlkStencil {
    fn name(&self) -> &'static str {
        "BlkStencil"
    }

    fn description(&self) -> &'static str {
        "Block-based stencil computation"
    }

    fn origin(&self) -> &'static str {
        "In house"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel(256)
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let bd = block_dim(gpu, 256);
        let grid: u32 = match scale {
            Scale::Test => 4,
            Scale::Paper => 64,
        };
        let n = grid * bd;
        let xs = rand_i32s(0xB57E, n as usize + 2);
        let want: Vec<i32> = (0..n as usize).map(|i| xs[i] + xs[i + 1] + xs[i + 2]).collect();

        let input = gpu.alloc_from(&xs);
        let out = gpu.alloc::<i32>(n);
        let stats =
            gpu.launch(&kernel(bd), Launch::new(grid, bd), &[(&input).into(), (&out).into()])?;
        check_eq("BlkStencil", &gpu.read(&out), &want)?;
        Ok(stats)
    }
}
