//! Histogram: 256-bin histogram of a byte array using a single thread block
//! (Figure 3 of the paper).

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// The paper's Figure-3 kernel: zero the shared bins, accumulate with
/// `atomicAdd`, copy the bins to global memory — with `__syncthreads`
/// between the phases.
pub struct Histogram;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("Histogram");
    let len = k.param_u32("len");
    let input = k.param_ptr("in", Elem::U8);
    let out = k.param_ptr("out", Elem::I32);
    let bins = k.shared("bins", Elem::I32, 256);
    let i = k.var_u32("i");
    // Initialise bins
    k.for_(i.clone(), k.thread_idx(), Expr::u32(256), k.block_dim(), |k| {
        k.store(&bins, i.clone(), Expr::i32(0));
    });
    k.barrier();
    // Update bins
    k.for_(i.clone(), k.thread_idx(), len, k.block_dim(), |k| {
        k.atomic_add(&bins, input.at(i.clone()), Expr::i32(1));
    });
    k.barrier();
    // Write bins to global memory
    k.for_(i.clone(), k.thread_idx(), Expr::u32(256), k.block_dim(), |k| {
        k.store(&out, i.clone(), bins.at(i.clone()));
    });
    k.finish()
}

impl NoclBench for Histogram {
    fn name(&self) -> &'static str {
        "Histogram"
    }

    fn description(&self) -> &'static str {
        "256-bin histogram calculation"
    }

    fn origin(&self) -> &'static str {
        "CUDA code samples"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let n: u32 = match scale {
            Scale::Test => 4_096,
            Scale::Paper => 65_536,
        };
        let xs = rand_u8s(0x0157, n as usize);
        let mut want = vec![0i32; 256];
        for &x in &xs {
            want[x as usize] += 1;
        }

        let input = gpu.alloc_from(&xs);
        let out = gpu.alloc::<i32>(256);
        // A single thread block spanning the whole SM, as in the paper.
        let bd = gpu.sm().config().threads();
        let stats =
            gpu.launch(&kernel(), Launch::new(1, bd), &[n.into(), (&input).into(), (&out).into()])?;
        check_eq("Histogram", &gpu.read(&out), &want)?;
        Ok(stats)
    }
}
