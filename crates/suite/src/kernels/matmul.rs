//! MatMul: tiled dense matrix multiplication through shared memory.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// Each block computes a `T×T` output tile; A- and B-tiles are staged
/// through two shared arrays with barriers around the inner product.
pub struct MatMul;

pub(crate) fn kernel(tile: u32) -> Kernel {
    let t = tile;
    let log_t = t.trailing_zeros();
    let mut k = KernelBuilder::new(&format!("MatMul{t}"));
    let n = k.param_u32("n"); // square matrices, n % t == 0
    let a = k.param_ptr("a", Elem::F32);
    let b = k.param_ptr("b", Elem::F32);
    let c = k.param_ptr("c", Elem::F32);
    let at = k.shared("atile", Elem::F32, t * t);
    let bt = k.shared("btile", Elem::F32, t * t);
    let tx = k.var_u32("tx");
    let ty = k.var_u32("ty");
    let bx = k.var_u32("bx");
    let by = k.var_u32("by");
    let acc = k.var_f32("acc");
    let kt = k.var_u32("kt");
    let kk = k.var_u32("kk");
    k.assign(&tx, k.thread_idx() & Expr::u32(t - 1));
    k.assign(&ty, k.thread_idx() >> Expr::u32(log_t));
    let tpr = n.clone() / Expr::u32(t);
    k.assign(&bx, k.block_idx() % tpr.clone());
    k.assign(&by, k.block_idx() / tpr);
    k.assign(&acc, Expr::f32(0.0));
    let row = by.clone() * Expr::u32(t) + ty.clone();
    let col = bx.clone() * Expr::u32(t) + tx.clone();
    k.for_(kt.clone(), Expr::u32(0), n.clone() / Expr::u32(t), Expr::u32(1), |k| {
        let ka = kt.clone() * Expr::u32(t) + tx.clone();
        let kb = kt.clone() * Expr::u32(t) + ty.clone();
        k.store(&at, ty.clone() * Expr::u32(t) + tx.clone(), a.at(row.clone() * n.clone() + ka));
        k.store(&bt, ty.clone() * Expr::u32(t) + tx.clone(), b.at(kb * n.clone() + col.clone()));
        k.barrier();
        k.for_(kk.clone(), Expr::u32(0), Expr::u32(t), Expr::u32(1), |k| {
            k.assign(
                &acc,
                acc.clone()
                    + at.at(ty.clone() * Expr::u32(t) + kk.clone())
                        * bt.at(kk.clone() * Expr::u32(t) + tx.clone()),
            );
        });
        k.barrier();
    });
    k.store(&c, row * n + col, acc.clone());
    k.finish()
}

impl NoclBench for MatMul {
    fn name(&self) -> &'static str {
        "MatMul"
    }

    fn description(&self) -> &'static str {
        "Matrix x matrix multiplication"
    }

    fn origin(&self) -> &'static str {
        "CUDA code samples"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel(16)
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let bd = block_dim(gpu, 256);
        let tile = 1u32 << (bd.trailing_zeros() / 2);
        let bd = tile * tile;
        let n: u32 = match scale {
            Scale::Test => 2 * tile,
            Scale::Paper => 96,
        };
        assert!(n.is_multiple_of(tile));
        let a = rand_f32s(0x3A73, (n * n) as usize);
        let b = rand_f32s(0x3A74, (n * n) as usize);
        let nn = n as usize;
        let mut want = vec![0f32; nn * nn];
        for r in 0..nn {
            for kx in 0..nn {
                let av = a[r * nn + kx];
                for cx in 0..nn {
                    want[r * nn + cx] += av * b[kx * nn + cx];
                }
            }
        }

        let da = gpu.alloc_from(&a);
        let db = gpu.alloc_from(&b);
        let dc = gpu.alloc::<f32>(n * n);
        let grid = (n / tile) * (n / tile);
        let stats = gpu.launch(
            &kernel(tile),
            Launch::new(grid, bd),
            &[n.into(), (&da).into(), (&db).into(), (&dc).into()],
        )?;
        check_close("MatMul", &gpu.read(&dc), &want, 1e-3)?;
        Ok(stats)
    }
}
