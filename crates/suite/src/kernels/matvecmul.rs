//! MatVecMul: dense matrix × vector product, one row per thread.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// `y[r] = Σ_c A[r][c] * x[c]`, rows distributed grid-stride.
pub struct MatVecMul;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("MatVecMul");
    let rows = k.param_u32("rows");
    let cols = k.param_u32("cols");
    let a = k.param_ptr("a", Elem::F32);
    let x = k.param_ptr("x", Elem::F32);
    let y = k.param_ptr("y", Elem::F32);
    let r = k.var_u32("r");
    let c = k.var_u32("c");
    let acc = k.var_f32("acc");
    k.for_(r.clone(), k.global_id(), rows, k.global_threads(), |k| {
        k.assign(&acc, Expr::f32(0.0));
        k.for_(c.clone(), Expr::u32(0), cols.clone(), Expr::u32(1), |k| {
            k.assign(
                &acc,
                acc.clone() + a.at(r.clone() * cols.clone() + c.clone()) * x.at(c.clone()),
            );
        });
        k.store(&y, r.clone(), acc.clone());
    });
    k.finish()
}

impl NoclBench for MatVecMul {
    fn name(&self) -> &'static str {
        "MatVecMul"
    }

    fn description(&self) -> &'static str {
        "Matrix x vector multiplication"
    }

    fn origin(&self) -> &'static str {
        "NVIDIA OpenCL SDK"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let (rows, cols): (u32, u32) = match scale {
            Scale::Test => (64, 48),
            Scale::Paper => (256, 256),
        };
        let a = rand_f32s(0x3A7, (rows * cols) as usize);
        let x = rand_f32s(0x3A8, cols as usize);
        let want: Vec<f32> = (0..rows as usize)
            .map(|r| (0..cols as usize).map(|c| a[r * cols as usize + c] * x[c]).sum())
            .collect();

        let da = gpu.alloc_from(&a);
        let dx = gpu.alloc_from(&x);
        let dy = gpu.alloc::<f32>(rows);
        let bd = block_dim(gpu, 64);
        let grid = (rows / bd).clamp(1, 32);
        let stats = gpu.launch(
            &kernel(),
            Launch::new(grid, bd),
            &[rows.into(), cols.into(), (&da).into(), (&dx).into(), (&dy).into()],
        )?;
        check_close("MatVecMul", &gpu.read(&dy), &want, 1e-4)?;
        Ok(stats)
    }
}
