//! The fourteen benchmarks of Table 1.

mod bitonic_la;
mod bitonic_sm;
mod blk_stencil;
mod histogram;
mod matmul;
mod matvecmul;
mod motion_est;
mod reduce;
mod scan;
mod spmv;
mod str_stencil;
mod transpose;
mod vecadd;
mod vecgcd;

use crate::NoclBench;

/// The suite, in Table-1 order.
pub fn catalog() -> &'static [&'static dyn NoclBench] {
    &[
        &vecadd::VecAdd,
        &histogram::Histogram,
        &reduce::Reduce,
        &scan::Scan,
        &transpose::Transpose,
        &matvecmul::MatVecMul,
        &matmul::MatMul,
        &bitonic_sm::BitonicSm,
        &bitonic_la::BitonicLa,
        &spmv::Spmv,
        &blk_stencil::BlkStencil,
        &str_stencil::StrStencil,
        &vecgcd::VecGcd,
        &motion_est::MotionEst,
    ]
}
