//! MotionEst: block-matching motion estimation — for every 4×4 block of the
//! current frame, exhaustively search a ±R window in the (padded) reference
//! frame for the offset minimising the sum of absolute differences.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

const B: u32 = 4; // block size
const R: i32 = 2; // search radius

/// One thread per 4×4 block; output is `best_sad * 256 + (dx+R)*16 + (dy+R)`.
pub struct MotionEst;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("MotionEst");
    let w = k.param_u32("w"); // frame width, multiple of B
    let nblocks = k.param_u32("nblocks"); // (w/B) * (h/B)
    let cur = k.param_ptr("cur", Elem::U8); // w x h
    let refp = k.param_ptr("ref", Elem::U8); // (w+2R) x (h+2R), padded
    let out = k.param_ptr("out", Elem::U32);
    let blk = k.var_u32("blk");
    let bx = k.var_u32("bx");
    let by = k.var_u32("by");
    let dx = k.var_i32("dx");
    let dy = k.var_i32("dy");
    let px = k.var_u32("px");
    let py = k.var_u32("py");
    let sad = k.var_u32("sad");
    let best = k.var_u32("best");
    let diff = k.var_i32("diff");
    let xx = k.var_u32("xx");
    let yy = k.var_u32("yy");
    let rxv = k.var_u32("rxv");
    let ryv = k.var_u32("ryv");
    let rw = w.clone() + Expr::u32(2 * R as u32); // padded width
    k.for_(blk.clone(), k.global_id(), nblocks, k.global_threads(), |k| {
        let bpr = w.clone() / Expr::u32(B); // blocks per row
        k.assign(&bx, blk.clone() % bpr.clone());
        k.assign(&by, blk.clone() / bpr);
        k.assign(&best, Expr::u32(u32::MAX));
        k.for_(dy.clone(), Expr::i32(-R), Expr::i32(R + 1), Expr::i32(1), |k| {
            k.for_(dx.clone(), Expr::i32(-R), Expr::i32(R + 1), Expr::i32(1), |k| {
                k.assign(&sad, Expr::u32(0));
                k.for_(py.clone(), Expr::u32(0), Expr::u32(B), Expr::u32(1), |k| {
                    k.for_(px.clone(), Expr::u32(0), Expr::u32(B), Expr::u32(1), |k| {
                        k.assign(&xx, bx.clone() * Expr::u32(B) + px.clone());
                        k.assign(&yy, by.clone() * Expr::u32(B) + py.clone());
                        k.assign(
                            &rxv,
                            ((xx.clone() + Expr::u32(R as u32)).as_i32() + dx.clone()).as_u32(),
                        );
                        k.assign(
                            &ryv,
                            ((yy.clone() + Expr::u32(R as u32)).as_i32() + dy.clone()).as_u32(),
                        );
                        let c = cur.at(yy.clone() * w.clone() + xx.clone()).as_i32();
                        let r = refp.at(ryv.clone() * rw.clone() + rxv.clone()).as_i32();
                        k.assign(&diff, c - r);
                        k.if_(diff.clone().lt(Expr::i32(0)), |k| {
                            k.assign(&diff, Expr::i32(0) - diff.clone());
                        });
                        k.assign(&sad, sad.clone() + diff.clone().as_u32());
                    });
                });
                // Encode (sad, dx, dy) so the minimum carries its offset.
                let code = sad.clone() * Expr::u32(256)
                    + (dx.clone() + Expr::i32(R)).as_u32() * Expr::u32(16)
                    + (dy.clone() + Expr::i32(R)).as_u32();
                k.assign(&best, best.clone().min(code));
            });
        });
        k.store(&out, blk.clone(), best.clone());
    });
    k.finish()
}

fn reference(w: usize, h: usize, cur: &[u8], refp: &[u8]) -> Vec<u32> {
    let rw = w + 2 * R as usize;
    let bpr = w / B as usize;
    let nblocks = bpr * (h / B as usize);
    (0..nblocks)
        .map(|blk| {
            let (bx, by) = (blk % bpr, blk / bpr);
            let mut best = u32::MAX;
            for dy in -R..=R {
                for dx in -R..=R {
                    let mut sad = 0u32;
                    for py in 0..B as usize {
                        for px in 0..B as usize {
                            let x = bx * B as usize + px;
                            let y = by * B as usize + py;
                            let c = cur[y * w + x] as i32;
                            let rx = (x as i32 + R + dx) as usize;
                            let ry = (y as i32 + R + dy) as usize;
                            let r = refp[ry * rw + rx] as i32;
                            sad += (c - r).unsigned_abs();
                        }
                    }
                    let code = sad * 256 + ((dx + R) as u32) * 16 + (dy + R) as u32;
                    best = best.min(code);
                }
            }
            best
        })
        .collect()
}

impl NoclBench for MotionEst {
    fn name(&self) -> &'static str {
        "MotionEst"
    }

    fn description(&self) -> &'static str {
        "Motion estimation"
    }

    fn origin(&self) -> &'static str {
        "In house"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let (w, h): (usize, usize) = match scale {
            Scale::Test => (16, 16),
            Scale::Paper => (64, 48),
        };
        let rw = w + 2 * R as usize;
        let rh = h + 2 * R as usize;
        let cur = rand_u8s(0x40E5, w * h);
        let refp = rand_u8s(0x40E6, rw * rh);
        let nblocks = (w / B as usize) * (h / B as usize);
        let want = reference(w, h, &cur, &refp);

        let d_cur = gpu.alloc_from(&cur);
        let d_ref = gpu.alloc_from(&refp);
        let d_out = gpu.alloc::<u32>(nblocks as u32);
        let bd = block_dim(gpu, 64);
        let grid = (nblocks as u32 / bd).clamp(1, 16);
        let stats = gpu.launch(
            &kernel(),
            Launch::new(grid, bd),
            &[
                (w as u32).into(),
                (nblocks as u32).into(),
                (&d_cur).into(),
                (&d_ref).into(),
                (&d_out).into(),
            ],
        )?;
        check_eq("MotionEst", &gpu.read(&d_out), &want)?;
        Ok(stats)
    }
}
