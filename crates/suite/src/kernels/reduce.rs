//! Reduce: vector summation with a shared-memory tree per block.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// Grid-stride accumulation, block tree reduction in shared memory, then
/// one `atomicAdd` of the block partial into the result.
pub struct Reduce;

pub(crate) fn kernel(bd: u32) -> Kernel {
    let mut k = KernelBuilder::new(&format!("Reduce{bd}"));
    let len = k.param_u32("len");
    let input = k.param_ptr("in", Elem::I32);
    let out = k.param_ptr("out", Elem::I32);
    let tile = k.shared("tile", Elem::I32, bd);
    let i = k.var_u32("i");
    let acc = k.var_i32("acc");
    k.assign(&acc, Expr::i32(0));
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.assign(&acc, acc.clone() + input.at(i.clone()));
    });
    k.store(&tile, k.thread_idx(), acc.clone());
    k.barrier();
    let s = k.var_u32("s");
    k.assign(&s, Expr::u32(bd / 2));
    k.while_(s.clone().gt(Expr::u32(0)), |k| {
        k.if_(k.thread_idx().lt(s.clone()), |k| {
            k.store(
                &tile,
                k.thread_idx(),
                tile.at(k.thread_idx()) + tile.at(k.thread_idx() + s.clone()),
            );
        });
        k.barrier();
        k.assign(&s, s.clone() >> Expr::u32(1));
    });
    k.if_(k.thread_idx().eq_(Expr::u32(0)), |k| {
        k.atomic_add(&out, Expr::u32(0), tile.at(Expr::u32(0)));
    });
    k.finish()
}

impl NoclBench for Reduce {
    fn name(&self) -> &'static str {
        "Reduce"
    }

    fn description(&self) -> &'static str {
        "Vector summation"
    }

    fn origin(&self) -> &'static str {
        "CUDA code samples"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel(256)
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let n: u32 = match scale {
            Scale::Test => 3_000,
            Scale::Paper => 65_536,
        };
        let xs = rand_i32s(0x5ED0, n as usize);
        let want: i32 = xs.iter().sum();

        let input = gpu.alloc_from(&xs);
        let out = gpu.alloc_from(&[0i32]);
        let bd = block_dim(gpu, 256);
        let grid = (n / bd).clamp(1, 32);
        let stats = gpu.launch(
            &kernel(bd),
            Launch::new(grid, bd),
            &[n.into(), (&input).into(), (&out).into()],
        )?;
        check_eq("Reduce", &gpu.read(&out), &[want])?;
        Ok(stats)
    }
}
