//! Scan: per-block inclusive prefix sum (Hillis–Steele, GPU Gems 3).

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// Each block scans its own `blockDim`-element segment using a
/// double-buffered shared array.
pub struct Scan;

pub(crate) fn kernel(bd: u32) -> Kernel {
    let mut k = KernelBuilder::new(&format!("Scan{bd}"));
    let input = k.param_ptr("in", Elem::U32);
    let out = k.param_ptr("out", Elem::U32);
    let buf = k.shared("buf", Elem::U32, 2 * bd);
    let gid = k.var_u32("gid");
    k.assign(&gid, k.global_id());
    let pin = k.var_u32("pin");
    let pout = k.var_u32("pout");
    k.assign(&pout, Expr::u32(0));
    k.store(&buf, k.thread_idx(), input.at(gid.clone()));
    k.barrier();
    let d = k.var_u32("d");
    k.assign(&d, Expr::u32(1));
    k.while_(d.clone().lt(Expr::u32(bd)), |k| {
        k.assign(&pin, pout.clone());
        k.assign(&pout, pout.clone() ^ Expr::u32(1));
        let src = pin.clone() * Expr::u32(bd) + k.thread_idx();
        let dst = pout.clone() * Expr::u32(bd) + k.thread_idx();
        k.if_else(
            k.thread_idx().ge(d.clone()),
            |k| {
                let v = buf.at(src.clone())
                    + buf.at(pin.clone() * Expr::u32(bd) + k.thread_idx() - d.clone());
                k.store(&buf, dst.clone(), v);
            },
            |k| {
                k.store(&buf, dst.clone(), buf.at(src.clone()));
            },
        );
        k.barrier();
        k.assign(&d, d.clone() << Expr::u32(1));
    });
    k.store(&out, gid, buf.at(pout * Expr::u32(bd) + k.thread_idx()));
    k.finish()
}

impl NoclBench for Scan {
    fn name(&self) -> &'static str {
        "Scan"
    }

    fn description(&self) -> &'static str {
        "Parallel prefix sum"
    }

    fn origin(&self) -> &'static str {
        "GPU Gems 3"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel(256)
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let bd = block_dim(gpu, 256);
        let grid: u32 = match scale {
            Scale::Test => 4,
            Scale::Paper => 32,
        };
        let n = grid * bd;
        let xs = rand_u32s(0x5CA7, n as usize).iter().map(|v| v % 100).collect::<Vec<_>>();
        // Reference: segment-wise inclusive scan.
        let mut want = vec![0u32; n as usize];
        for seg in 0..grid as usize {
            let mut acc = 0u32;
            for i in 0..bd as usize {
                acc += xs[seg * bd as usize + i];
                want[seg * bd as usize + i] = acc;
            }
        }

        let input = gpu.alloc_from(&xs);
        let out = gpu.alloc::<u32>(n);
        let stats =
            gpu.launch(&kernel(bd), Launch::new(grid, bd), &[(&input).into(), (&out).into()])?;
        check_eq("Scan", &gpu.read(&out), &want)?;
        Ok(stats)
    }
}
