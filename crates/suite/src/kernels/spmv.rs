//! SPMV: sparse matrix × vector product in CSR form (Bell & Garland),
//! scalar kernel — one row per thread.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Kernel, KernelBuilder};

/// `y[r] = Σ_{e in row r} val[e] * x[col[e]]` over a CSR matrix; irregular
/// row lengths exercise control-flow divergence and gather accesses.
pub struct Spmv;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("SPMV");
    let rows = k.param_u32("rows");
    let rowptr = k.param_ptr("rowptr", Elem::U32);
    let col = k.param_ptr("col", Elem::U32);
    let val = k.param_ptr("val", Elem::F32);
    let x = k.param_ptr("x", Elem::F32);
    let y = k.param_ptr("y", Elem::F32);
    let r = k.var_u32("r");
    let e = k.var_u32("e");
    let end = k.var_u32("end");
    let acc = k.var_f32("acc");
    k.for_(r.clone(), k.global_id(), rows, k.global_threads(), |k| {
        k.assign(&acc, nocl_kir::Expr::f32(0.0));
        k.assign(&e, rowptr.at(r.clone()));
        k.assign(&end, rowptr.at(r.clone() + nocl_kir::Expr::u32(1)));
        k.while_(e.clone().lt(end.clone()), |k| {
            k.assign(&acc, acc.clone() + val.at(e.clone()) * x.at(col.at(e.clone())));
            k.assign(&e, e.clone() + nocl_kir::Expr::u32(1));
        });
        k.store(&y, r.clone(), acc.clone());
    });
    k.finish()
}

/// A random CSR matrix with row lengths in `0..=max_row`.
pub(crate) fn random_csr(
    seed: u64,
    rows: u32,
    cols: u32,
    max_row: u32,
) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
    let mut r = rng(seed);
    let mut rowptr = Vec::with_capacity(rows as usize + 1);
    let mut col = Vec::new();
    let mut val = Vec::new();
    rowptr.push(0u32);
    for _ in 0..rows {
        let len = r.range_u32(0, max_row + 1);
        for _ in 0..len {
            col.push(r.range_u32(0, cols));
            val.push(r.range_f32(-2.0, 2.0));
        }
        rowptr.push(col.len() as u32);
    }
    (rowptr, col, val)
}

impl NoclBench for Spmv {
    fn name(&self) -> &'static str {
        "SPMV"
    }

    fn description(&self) -> &'static str {
        "Sparse matrix x vector multiplication"
    }

    fn origin(&self) -> &'static str {
        "Bell & Garland (NVIDIA)"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let (rows, cols): (u32, u32) = match scale {
            Scale::Test => (256, 128),
            Scale::Paper => (4_096, 1_024),
        };
        let (rowptr, col, val) = random_csr(0x59A7, rows, cols, 12);
        let x = rand_f32s(0x59A8, cols as usize);
        let want: Vec<f32> = (0..rows as usize)
            .map(|r| {
                (rowptr[r]..rowptr[r + 1])
                    .map(|e| val[e as usize] * x[col[e as usize] as usize])
                    .sum()
            })
            .collect();

        let d_rowptr = gpu.alloc_from(&rowptr);
        let d_col = gpu.alloc_from(&col);
        let d_val = gpu.alloc_from(&val);
        let d_x = gpu.alloc_from(&x);
        let d_y = gpu.alloc::<f32>(rows);
        let bd = block_dim(gpu, 64);
        let grid = (rows / bd).clamp(1, 32);
        let stats = gpu.launch(
            &kernel(),
            Launch::new(grid, bd),
            &[
                rows.into(),
                (&d_rowptr).into(),
                (&d_col).into(),
                (&d_val).into(),
                (&d_x).into(),
                (&d_y).into(),
            ],
        )?;
        check_close("SPMV", &gpu.read(&d_y), &want, 1e-4)?;
        Ok(stats)
    }
}
