//! StrStencil: stripe-based 1D stencil reading directly from global memory.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// Three-point stencil without shared staging: each thread strides over the
/// array, reading its three neighbours from global memory (the coalescing
/// unit merges the overlap).
pub struct StrStencil;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("StrStencil");
    let n = k.param_u32("n");
    let input = k.param_ptr("in", Elem::I32); // n + 2 elements
    let out = k.param_ptr("out", Elem::I32);
    let i = k.var_u32("i");
    k.for_(i.clone(), k.global_id(), n, k.global_threads(), |k| {
        let s = input.at(i.clone())
            + input.at(i.clone() + Expr::u32(1))
            + input.at(i.clone() + Expr::u32(2));
        k.store(&out, i.clone(), s);
    });
    k.finish()
}

impl NoclBench for StrStencil {
    fn name(&self) -> &'static str {
        "StrStencil"
    }

    fn description(&self) -> &'static str {
        "Stripe-based stencil computation"
    }

    fn origin(&self) -> &'static str {
        "In house"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let n: u32 = match scale {
            Scale::Test => 2_000,
            Scale::Paper => 65_536,
        };
        let xs = rand_i32s(0x57E2, n as usize + 2);
        let want: Vec<i32> = (0..n as usize).map(|i| xs[i] + xs[i + 1] + xs[i + 2]).collect();

        let input = gpu.alloc_from(&xs);
        let out = gpu.alloc::<i32>(n);
        let bd = block_dim(gpu, 256);
        let grid = (n / bd).clamp(1, 32);
        let stats = gpu.launch(
            &kernel(),
            Launch::new(grid, bd),
            &[n.into(), (&input).into(), (&out).into()],
        )?;
        check_eq("StrStencil", &gpu.read(&out), &want)?;
        Ok(stats)
    }
}
