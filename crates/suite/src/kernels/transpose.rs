//! Transpose: tiled matrix transpose through padded shared memory.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// Classic tiled transpose: a `T×T` tile is staged through shared memory
/// (padded to `T×(T+1)` to dodge bank conflicts) so both the load and the
/// store are coalesced. The 2D block/tile indices are derived from the 1D
/// launch geometry.
pub struct Transpose;

pub(crate) fn kernel(tile: u32) -> Kernel {
    let t = tile;
    let mut k = KernelBuilder::new(&format!("Transpose{t}"));
    let n = k.param_u32("n"); // matrix is n x n, n % t == 0
    let input = k.param_ptr("in", Elem::F32);
    let out = k.param_ptr("out", Elem::F32);
    let sh = k.shared("tile", Elem::F32, t * (t + 1));
    let tx = k.var_u32("tx");
    let ty = k.var_u32("ty");
    let bx = k.var_u32("bx");
    let by = k.var_u32("by");
    let tpr = k.var_u32("tpr"); // tiles per row
    k.assign(&tx, k.thread_idx() & Expr::u32(t - 1));
    k.assign(&ty, k.thread_idx() >> Expr::u32(t.trailing_zeros()));
    k.assign(&tpr, n.clone() / Expr::u32(t));
    k.assign(&bx, k.block_idx() % tpr.clone());
    k.assign(&by, k.block_idx() / tpr.clone());
    // Load in[y][x] into tile[ty][tx].
    let x = bx.clone() * Expr::u32(t) + tx.clone();
    let y = by.clone() * Expr::u32(t) + ty.clone();
    k.store(
        &sh,
        ty.clone() * Expr::u32(t + 1) + tx.clone(),
        input.at(y.clone() * n.clone() + x.clone()),
    );
    k.barrier();
    // Store tile[tx][ty] to out[y'][x'] with swapped block indices.
    let x2 = by * Expr::u32(t) + tx.clone();
    let y2 = bx * Expr::u32(t) + ty.clone();
    k.store(&out, y2 * n + x2, sh.at(tx * Expr::u32(t + 1) + ty));
    k.finish()
}

impl NoclBench for Transpose {
    fn name(&self) -> &'static str {
        "Transpose"
    }

    fn description(&self) -> &'static str {
        "Matrix transpose"
    }

    fn origin(&self) -> &'static str {
        "CUDA code samples"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel(16)
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let bd = block_dim(gpu, 256);
        let tile = 1u32 << (bd.trailing_zeros() / 2); // tile^2 == bd
        let bd = tile * tile;
        let n: u32 = match scale {
            Scale::Test => 4 * tile,
            Scale::Paper => 128,
        };
        assert!(n.is_multiple_of(tile));
        let xs = rand_f32s(0x7235, (n * n) as usize);
        let mut want = vec![0f32; (n * n) as usize];
        for r in 0..n as usize {
            for c in 0..n as usize {
                want[c * n as usize + r] = xs[r * n as usize + c];
            }
        }

        let input = gpu.alloc_from(&xs);
        let out = gpu.alloc::<f32>(n * n);
        let grid = (n / tile) * (n / tile);
        let stats = gpu.launch(
            &kernel(tile),
            Launch::new(grid, bd),
            &[n.into(), (&input).into(), (&out).into()],
        )?;
        check_eq("Transpose", &gpu.read(&out), &want)?;
        Ok(stats)
    }
}
