//! VecAdd: element-wise vector addition (NVIDIA OpenCL SDK).

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Kernel, KernelBuilder};

/// `c[i] = a[i] + b[i]` with a grid-stride loop.
pub struct VecAdd;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("VecAdd");
    let len = k.param_u32("len");
    let a = k.param_ptr("a", Elem::F32);
    let b = k.param_ptr("b", Elem::F32);
    let c = k.param_ptr("c", Elem::F32);
    let i = k.var_u32("i");
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.store(&c, i.clone(), a.at(i.clone()) + b.at(i.clone()));
    });
    k.finish()
}

impl NoclBench for VecAdd {
    fn name(&self) -> &'static str {
        "VecAdd"
    }

    fn description(&self) -> &'static str {
        "Vector addition"
    }

    fn origin(&self) -> &'static str {
        "NVIDIA OpenCL SDK"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let n: u32 = match scale {
            Scale::Test => 2_000,
            Scale::Paper => 65_536,
        };
        let xs = rand_f32s(0xADD0, n as usize);
        let ys = rand_f32s(0xADD1, n as usize);
        let want: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| x + y).collect();

        let a = gpu.alloc_from(&xs);
        let b = gpu.alloc_from(&ys);
        let c = gpu.alloc::<f32>(n);
        let bd = block_dim(gpu, 256);
        let grid = (n / bd).clamp(1, 64);
        let stats = gpu.launch(
            &kernel(),
            Launch::new(grid, bd),
            &[n.into(), (&a).into(), (&b).into(), (&c).into()],
        )?;
        check_eq("VecAdd", &gpu.read(&c), &want)?;
        Ok(stats)
    }
}
