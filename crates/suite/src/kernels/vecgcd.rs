//! VecGCD: element-wise greatest common divisor — heavily divergent loop
//! trip counts and a hot integer divider.

use crate::util::*;
use crate::{BenchError, NoclBench, Scale};
use cheri_simt::KernelStats;
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder};

/// `c[i] = gcd(a[i], b[i])` by Euclid's algorithm.
pub struct VecGcd;

pub(crate) fn kernel() -> Kernel {
    let mut k = KernelBuilder::new("VecGCD");
    let len = k.param_u32("len");
    let a = k.param_ptr("a", Elem::U32);
    let b = k.param_ptr("b", Elem::U32);
    let c = k.param_ptr("c", Elem::U32);
    let i = k.var_u32("i");
    let x = k.var_u32("x");
    let y = k.var_u32("y");
    let t = k.var_u32("t");
    k.for_(i.clone(), k.global_id(), len, k.global_threads(), |k| {
        k.assign(&x, a.at(i.clone()));
        k.assign(&y, b.at(i.clone()));
        k.while_(y.clone().ne_(Expr::u32(0)), |k| {
            k.assign(&t, x.clone() % y.clone());
            k.assign(&x, y.clone());
            k.assign(&y, t.clone());
        });
        k.store(&c, i.clone(), x.clone());
    });
    k.finish()
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl NoclBench for VecGcd {
    fn name(&self) -> &'static str {
        "VecGCD"
    }

    fn description(&self) -> &'static str {
        "Vectorised greatest common divisor"
    }

    fn origin(&self) -> &'static str {
        "In house"
    }

    fn example_kernel(&self) -> nocl_kir::Kernel {
        kernel()
    }

    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError> {
        let n: u32 = match scale {
            Scale::Test => 512,
            Scale::Paper => 8_192,
        };
        let xs: Vec<u32> = rand_u32s(0x6CD0, n as usize).iter().map(|v| v + 1).collect();
        let ys: Vec<u32> = rand_u32s(0x6CD1, n as usize).iter().map(|v| v + 1).collect();
        let want: Vec<u32> = xs.iter().zip(&ys).map(|(&x, &y)| gcd(x, y)).collect();

        let a = gpu.alloc_from(&xs);
        let b = gpu.alloc_from(&ys);
        let c = gpu.alloc::<u32>(n);
        let bd = block_dim(gpu, 64);
        let grid = (n / bd).clamp(1, 32);
        let stats = gpu.launch(
            &kernel(),
            Launch::new(grid, bd),
            &[n.into(), (&a).into(), (&b).into(), (&c).into()],
        )?;
        check_eq("VecGCD", &gpu.read(&c), &want)?;
        Ok(stats)
    }
}
