//! The NoCL benchmark suite (Table 1 of the paper): fourteen CUDA-style
//! compute kernels written against the [`nocl_kir`] IR, each with a host
//! reference implementation and a self-check.
//!
//! | Benchmark  | Description                             |
//! |------------|-----------------------------------------|
//! | VecAdd     | Vector addition                         |
//! | Histogram  | 256-bin histogram calculation           |
//! | Reduce     | Vector summation                        |
//! | Scan       | Parallel prefix sum                     |
//! | Transpose  | Matrix transpose                        |
//! | MatVecMul  | Matrix × vector multiplication          |
//! | MatMul     | Matrix × matrix multiplication          |
//! | BitonicSm  | Bitonic sorter (small arrays)           |
//! | BitonicLa  | Bitonic sorter (large arrays)           |
//! | SPMV       | Sparse matrix × vector multiplication   |
//! | BlkStencil | Block-based stencil computation         |
//! | StrStencil | Stripe-based stencil computation        |
//! | VecGCD     | Vectorised greatest common divisor      |
//! | MotionEst  | Motion estimation                       |
//!
//! Every benchmark runs unchanged in all four compilation modes; the suite
//! verifies device results against the host reference after every launch.
//!
//! ```
//! use cheri_simt::{CheriMode, SmConfig};
//! use nocl::Gpu;
//! use nocl_kir::Mode;
//! use nocl_suite::{catalog, Scale};
//!
//! let mut gpu = Gpu::new(SmConfig::small(CheriMode::Off), Mode::Baseline);
//! let vecadd = &catalog()[0];
//! let stats = vecadd.run(&mut gpu, Scale::Test).unwrap();
//! assert!(stats.instrs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kernels;
mod util;

pub use kernels::catalog;
pub use util::{BenchError, Scale};

use cheri_simt::KernelStats;
use nocl::Gpu;

/// One benchmark of the suite.
pub trait NoclBench: Sync {
    /// Table-1 name.
    fn name(&self) -> &'static str;

    /// One-line description.
    fn description(&self) -> &'static str;

    /// Origin of the kernel (per Table 1).
    fn origin(&self) -> &'static str;

    /// A representative compiled form of the kernel (block size 256 where
    /// the kernel is geometry-dependent) — for disassembly and inspection.
    fn example_kernel(&self) -> nocl_kir::Kernel;

    /// Allocate inputs, launch (possibly several phase kernels), verify the
    /// device results against the host reference, and return the accumulated
    /// statistics.
    ///
    /// # Errors
    ///
    /// Fails if a launch fails or the results do not match the reference.
    fn run(&self, gpu: &mut Gpu, scale: Scale) -> Result<KernelStats, BenchError>;
}

/// Run the full suite on one GPU, returning `(name, stats)` pairs.
///
/// # Errors
///
/// Fails on the first benchmark that fails.
pub fn run_suite(
    gpu: &mut Gpu,
    scale: Scale,
) -> Result<Vec<(&'static str, KernelStats)>, BenchError> {
    let mut out = Vec::new();
    for b in catalog() {
        let stats = b.run(gpu, scale)?;
        out.push((b.name(), stats));
    }
    Ok(out)
}

/// A `Send`-safe descriptor of one suite cell, for fanning benchmarks out
/// across worker threads. The benchmark objects are `'static` and the
/// [`NoclBench`] trait requires `Sync`, so the descriptor can be copied
/// freely into a `thread::scope`; every benchmark seeds its input PRNG
/// from a per-benchmark constant, so cells are order-independent.
#[derive(Clone, Copy)]
pub struct SuiteJob {
    /// Position in Table-1 order — the reduction key that keeps parallel
    /// suite output deterministic.
    pub index: usize,
    /// The benchmark to run.
    pub bench: &'static dyn NoclBench,
}

/// All suite cells in Table-1 order.
pub fn suite_jobs() -> Vec<SuiteJob> {
    catalog().iter().enumerate().map(|(index, &bench)| SuiteJob { index, bench }).collect()
}

// The whole point of `SuiteJob` is crossing a `thread::scope`; keep that a
// compile-time guarantee.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SuiteJob>();
    assert_send_sync::<Scale>();
    assert_send_sync::<BenchError>();
};
