//! Shared helpers: scales, errors, geometry, verification.

use core::fmt;
use nocl::{Gpu, LaunchError};
use sim_prng::Prng;

/// Problem size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit tests (seconds on a small SM).
    Test,
    /// The sizes used by the reproduction harness on the full 2048-thread
    /// SM (the paper runs "small datasets" in simulation too).
    Paper,
}

/// Benchmark failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// A launch failed (compile/config/trap/timeout).
    Launch(LaunchError),
    /// The device result did not match the host reference.
    Mismatch(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Launch(e) => write!(f, "launch failed: {e}"),
            BenchError::Mismatch(s) => write!(f, "result mismatch: {s}"),
        }
    }
}

impl std::error::Error for BenchError {}

impl From<LaunchError> for BenchError {
    fn from(e: LaunchError) -> Self {
        BenchError::Launch(e)
    }
}

/// A deterministic RNG per benchmark. Each benchmark seeds its own stream
/// from a constant, so inputs are bit-identical no matter which worker of
/// the parallel runner executes the cell, or in what order.
pub(crate) fn rng(seed: u64) -> Prng {
    Prng::seed_from_u64(seed)
}

/// Random `i32` values in a small range (overflow-free accumulation).
pub(crate) fn rand_i32s(seed: u64, n: usize) -> Vec<i32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_i32(-100, 100)).collect()
}

/// Random `u32` keys.
pub(crate) fn rand_u32s(seed: u64, n: usize) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_u32(0, 1_000_000)).collect()
}

/// Random bytes.
pub(crate) fn rand_u8s(seed: u64, n: usize) -> Vec<u8> {
    let mut r = rng(seed);
    (0..n).map(|_| r.next_u8()).collect()
}

/// Random well-conditioned floats.
pub(crate) fn rand_f32s(seed: u64, n: usize) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_f32(-4.0, 4.0)).collect()
}

/// The largest power-of-two block size the SM supports, capped at `pref`.
pub(crate) fn block_dim(gpu: &Gpu, pref: u32) -> u32 {
    debug_assert!(pref.is_power_of_two());
    pref.min(gpu.sm().config().threads())
}

/// Compare integer slices exactly.
pub(crate) fn check_eq<T: PartialEq + fmt::Debug>(
    name: &str,
    got: &[T],
    want: &[T],
) -> Result<(), BenchError> {
    if got.len() != want.len() {
        return Err(BenchError::Mismatch(format!(
            "{name}: length {} vs {}",
            got.len(),
            want.len()
        )));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g != w {
            return Err(BenchError::Mismatch(format!("{name}[{i}]: got {g:?}, want {w:?}")));
        }
    }
    Ok(())
}

/// Compare float slices with a relative/absolute tolerance (device-side
/// accumulation order differs from the host's).
pub(crate) fn check_close(
    name: &str,
    got: &[f32],
    want: &[f32],
    tol: f32,
) -> Result<(), BenchError> {
    if got.len() != want.len() {
        return Err(BenchError::Mismatch(format!(
            "{name}: length {} vs {}",
            got.len(),
            want.len()
        )));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        if (g - w).abs() > tol * scale {
            return Err(BenchError::Mismatch(format!("{name}[{i}]: got {g}, want {w}")));
        }
    }
    Ok(())
}
