//! The whole suite must pass its self-checks in every compilation mode —
//! the model's equivalent of the artifact's `test.sh` ("All tests passed").

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::Gpu;
use nocl_kir::Mode;
use nocl_suite::{catalog, Scale};

fn gpu_for(mode: Mode, opts: CheriOpts) -> Gpu {
    let cheri = if mode.needs_cheri() { CheriMode::On(opts) } else { CheriMode::Off };
    Gpu::new(SmConfig::small(cheri), mode)
}

fn run_all(mode: Mode, opts: CheriOpts) {
    let mut gpu = gpu_for(mode, opts);
    for b in catalog() {
        let stats =
            b.run(&mut gpu, Scale::Test).unwrap_or_else(|e| panic!("{} [{mode:?}]: {e}", b.name()));
        assert!(stats.instrs > 0, "{}", b.name());
        assert!(stats.cycles > 0, "{}", b.name());
    }
}

#[test]
fn suite_baseline() {
    run_all(Mode::Baseline, CheriOpts::optimised());
}

#[test]
fn suite_purecap_optimised() {
    run_all(Mode::PureCap, CheriOpts::optimised());
}

#[test]
fn suite_purecap_naive() {
    run_all(Mode::PureCap, CheriOpts::naive());
}

#[test]
fn suite_rust_checked() {
    run_all(Mode::RustChecked, CheriOpts::optimised());
}

#[test]
fn suite_rust_full() {
    run_all(Mode::RustFull, CheriOpts::optimised());
}

#[test]
fn catalog_matches_table1() {
    let names: Vec<_> = catalog().iter().map(|b| b.name()).collect();
    assert_eq!(
        names,
        [
            "VecAdd",
            "Histogram",
            "Reduce",
            "Scan",
            "Transpose",
            "MatVecMul",
            "MatMul",
            "BitonicSm",
            "BitonicLa",
            "SPMV",
            "BlkStencil",
            "StrStencil",
            "VecGCD",
            "MotionEst",
        ]
    );
    for b in catalog() {
        assert!(!b.description().is_empty());
        assert!(!b.origin().is_empty());
    }
}

#[test]
fn blkstencil_diverges_metadata_but_nvo_keeps_the_rest_scalar() {
    // The paper's Section 4.3 observation: only BlkStencil occupies the VRF
    // with capability metadata; every other benchmark compresses fully
    // under NVO.
    let mut gpu = gpu_for(Mode::PureCap, CheriOpts::optimised());
    for b in catalog() {
        let stats = b.run(&mut gpu, Scale::Test).unwrap();
        if b.name() == "BlkStencil" {
            assert!(
                stats.peak_meta_vrf_resident > 0,
                "BlkStencil's pointer select must diverge metadata"
            );
        } else {
            assert_eq!(
                stats.peak_meta_vrf_resident,
                0,
                "{} should keep metadata fully compressed",
                b.name()
            );
        }
    }
}
