//! Trace exporters: JSON-lines and Chrome trace-event format.
//!
//! Both exporters are fully deterministic: the output is a pure function of
//! the event streams passed in, so two runs of the same deterministic
//! simulation produce byte-identical files regardless of how many worker
//! threads collected the cells.
//!
//! The Chrome exporter emits the [trace-event format] consumed by Perfetto
//! and `chrome://tracing`: one *process* per (cell, launch) pair and one
//! *thread* track per warp, plus dedicated tracks for the scheduler, the
//! DRAM channel and the tag cache, and a counter track for SFU occupancy.
//! Timestamps are in cycles (the viewer displays them as microseconds; read
//! "1 µs" as "1 cycle").
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{StallCause, TraceEvent, NO_WARP};
use std::fmt::Write as _;

/// One traced simulation cell: a labelled event stream (typically one
/// benchmark run under one configuration).
#[derive(Debug, Clone, Copy)]
pub struct TraceCell<'a> {
    /// Human-readable label, e.g. `"VecAdd [purecap]"`.
    pub label: &'a str,
    /// The cell's events in emission order.
    pub events: &'a [TraceEvent],
}

/// Escape a string for inclusion in a JSON string literal.
pub(crate) fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_kv_str(out: &mut String, key: &str, val: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    escape(val, out);
    out.push('"');
}

fn push_kv_num(out: &mut String, key: &str, val: u64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(out, "\"{key}\":{val}");
}

fn push_kv_bool(out: &mut String, key: &str, val: bool, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(out, "\"{key}\":{val}");
}

fn push_kv_hex(out: &mut String, key: &str, val: u64, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(out, "\"{key}\":\"0x{val:x}\"");
}

/// Serialise one event as a JSON object (without trailing newline). Shared
/// by the JSON-lines exporter and the `args` payload of the Chrome exporter.
fn event_fields(ev: &TraceEvent, out: &mut String, first: &mut bool) {
    match *ev {
        TraceEvent::Launch { cycle, warps } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warps", warps as u64, first);
        }
        TraceEvent::Issue { cycle, warp, pc, mask, mnemonic, class } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warp", warp as u64, first);
            push_kv_hex(out, "pc", pc as u64, first);
            push_kv_hex(out, "mask", mask, first);
            push_kv_str(out, "mnemonic", mnemonic, first);
            push_kv_str(out, "class", class.name(), first);
        }
        TraceEvent::Stall { cycle, warp, cause, cycles } => {
            push_kv_num(out, "cycle", cycle, first);
            if warp != NO_WARP {
                push_kv_num(out, "warp", warp as u64, first);
            }
            push_kv_str(out, "cause", cause.name(), first);
            push_kv_num(out, "cycles", cycles, first);
        }
        TraceEvent::Mem {
            cycle,
            warp,
            space,
            is_store,
            lanes,
            transactions,
            uniform,
            conflict_cycles,
        } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warp", warp as u64, first);
            push_kv_str(out, "space", space.name(), first);
            push_kv_bool(out, "is_store", is_store, first);
            push_kv_num(out, "lanes", lanes as u64, first);
            push_kv_num(out, "transactions", transactions as u64, first);
            push_kv_bool(out, "uniform", uniform, first);
            push_kv_num(out, "conflict_cycles", conflict_cycles as u64, first);
        }
        TraceEvent::TagCache { cycle, warp, hit, writeback } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warp", warp as u64, first);
            push_kv_bool(out, "hit", hit, first);
            push_kv_bool(out, "writeback", writeback, first);
        }
        TraceEvent::Dram { cycle, warp, reads, writes, tag_txns, done_at } => {
            push_kv_num(out, "cycle", cycle, first);
            if warp != NO_WARP {
                push_kv_num(out, "warp", warp as u64, first);
            }
            push_kv_num(out, "reads", reads as u64, first);
            push_kv_num(out, "writes", writes as u64, first);
            push_kv_num(out, "tag_txns", tag_txns as u64, first);
            push_kv_num(out, "done_at", done_at, first);
        }
        TraceEvent::Sfu { cycle, warp, lanes, latency } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warp", warp as u64, first);
            push_kv_num(out, "lanes", lanes as u64, first);
            push_kv_num(out, "latency", latency, first);
        }
        TraceEvent::RfTransition { cycle, warp, rf, reg, to_vector } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warp", warp as u64, first);
            push_kv_str(out, "rf", rf.name(), first);
            push_kv_num(out, "reg", reg as u64, first);
            push_kv_bool(out, "to_vector", to_vector, first);
        }
        TraceEvent::Barrier { cycle, warp, release } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warp", warp as u64, first);
            push_kv_bool(out, "release", release, first);
        }
        TraceEvent::Trap { cycle, warp, pc, mask, cause, suppressed } => {
            push_kv_num(out, "cycle", cycle, first);
            push_kv_num(out, "warp", warp as u64, first);
            push_kv_hex(out, "pc", pc as u64, first);
            push_kv_hex(out, "mask", mask, first);
            push_kv_str(out, "cause", cause, first);
            push_kv_bool(out, "suppressed", suppressed, first);
        }
    }
}

/// Export cells as JSON-lines: one JSON object per event, prefixed with the
/// cell label and event type. Lines appear in cell order, then emission
/// order — the canonical flat form of the trace.
pub fn to_jsonl(cells: &[TraceCell]) -> String {
    let mut out = String::new();
    for cell in cells {
        for ev in cell.events {
            out.push('{');
            let mut first = true;
            push_kv_str(&mut out, "cell", cell.label, &mut first);
            push_kv_str(&mut out, "type", ev.kind(), &mut first);
            event_fields(ev, &mut out, &mut first);
            out.push_str("}\n");
        }
    }
    out
}

/// Reserved Chrome-trace thread ids for non-warp tracks.
const TID_SCHED: u32 = 1000;
/// Tag-cache lookups track.
const TID_TAG: u32 = 1001;
/// DRAM channel track.
const TID_DRAM: u32 = 1002;

#[allow(clippy::too_many_arguments)]
fn chrome_event(
    out: &mut String,
    ph: char,
    name: &str,
    pid: u32,
    tid: u32,
    ts: u64,
    dur: Option<u64>,
    ev: Option<&TraceEvent>,
) {
    out.push_str("{\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"name\":\"");
    escape(name, out);
    let _ = write!(out, "\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}");
    if let Some(d) = dur {
        let _ = write!(out, ",\"dur\":{d}");
    }
    if ph == 'i' {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    if let Some(ev) = ev {
        let mut first = true;
        push_kv_str(out, "type", ev.kind(), &mut first);
        event_fields(ev, out, &mut first);
    }
    out.push_str("}},\n");
}

fn chrome_meta(out: &mut String, kind: &str, pid: u32, tid: Option<u32>, name: &str) {
    out.push_str("{\"ph\":\"M\",\"name\":\"");
    out.push_str(kind);
    let _ = write!(out, "\",\"pid\":{pid}");
    if let Some(t) = tid {
        let _ = write!(out, ",\"tid\":{t}");
    }
    out.push_str(",\"args\":{\"name\":\"");
    escape(name, out);
    out.push_str("\"}},\n");
}

/// Export cells in Chrome trace-event format (a JSON object with a
/// `traceEvents` array), viewable in Perfetto or `chrome://tracing`.
///
/// Layout: each (cell, launch) pair becomes one process; within it, each
/// warp gets a thread track carrying issue slices, stall slices and
/// memory/regfile/barrier instants; the scheduler (idle stalls), the tag
/// cache and the DRAM channel get dedicated tracks; SFU occupancy is a
/// counter track (`sfu_lanes`).
pub fn to_chrome(cells: &[TraceCell]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut pid = 0u32;
    for cell in cells {
        // Split the stream into launches at Launch markers; events before
        // the first marker (none, in practice) belong to an implicit first
        // launch.
        let mut launches: Vec<&[TraceEvent]> = Vec::new();
        let mut start = 0usize;
        for (i, ev) in cell.events.iter().enumerate() {
            if matches!(ev, TraceEvent::Launch { .. }) && i > start {
                launches.push(&cell.events[start..i]);
                start = i;
            }
        }
        launches.push(&cell.events[start..]);
        let launches: Vec<&[TraceEvent]> = launches.into_iter().filter(|l| !l.is_empty()).collect();

        for (launch_idx, events) in launches.iter().enumerate() {
            let mut body = String::new();
            let mut warps_seen: Vec<u32> = Vec::new();
            let mut used_sched = false;
            let mut used_tag = false;
            let mut used_dram = false;
            // SFU occupancy deltas: (cycle, +lanes) and (cycle, -lanes).
            let mut sfu_deltas: Vec<(u64, i64)> = Vec::new();
            for ev in *events {
                if let Some(w) = ev.warp() {
                    if !warps_seen.contains(&w) {
                        warps_seen.push(w);
                    }
                }
                match *ev {
                    TraceEvent::Launch { .. } => {}
                    TraceEvent::Issue { cycle, warp, mnemonic, .. } => {
                        chrome_event(&mut body, 'X', mnemonic, pid, warp, cycle, Some(1), Some(ev));
                    }
                    TraceEvent::Stall { cycle, warp, cause, cycles } => {
                        let tid = if warp == NO_WARP {
                            used_sched = true;
                            TID_SCHED
                        } else {
                            warp
                        };
                        let name = match cause {
                            StallCause::Idle => "idle",
                            c => c.name(),
                        };
                        chrome_event(
                            &mut body,
                            'X',
                            name,
                            pid,
                            tid,
                            cycle,
                            Some(cycles.max(1)),
                            Some(ev),
                        );
                    }
                    TraceEvent::Mem { cycle, warp, space, .. } => {
                        chrome_event(
                            &mut body,
                            'i',
                            space.name(),
                            pid,
                            warp,
                            cycle,
                            None,
                            Some(ev),
                        );
                    }
                    TraceEvent::TagCache { cycle, hit, .. } => {
                        used_tag = true;
                        let name = if hit { "tag hit" } else { "tag miss" };
                        chrome_event(&mut body, 'i', name, pid, TID_TAG, cycle, None, Some(ev));
                    }
                    TraceEvent::Dram { cycle, .. } => {
                        used_dram = true;
                        chrome_event(&mut body, 'i', "dram", pid, TID_DRAM, cycle, None, Some(ev));
                    }
                    TraceEvent::Sfu { cycle, warp, lanes, latency } => {
                        chrome_event(
                            &mut body,
                            'X',
                            "sfu",
                            pid,
                            warp,
                            cycle,
                            Some(latency.max(1)),
                            Some(ev),
                        );
                        sfu_deltas.push((cycle, lanes as i64));
                        sfu_deltas.push((cycle + latency, -(lanes as i64)));
                    }
                    TraceEvent::RfTransition { cycle, warp, to_vector, .. } => {
                        let name = if to_vector { "srf→vrf" } else { "vrf→srf" };
                        chrome_event(&mut body, 'i', name, pid, warp, cycle, None, Some(ev));
                    }
                    TraceEvent::Barrier { cycle, warp, release } => {
                        let name = if release { "barrier release" } else { "barrier" };
                        chrome_event(&mut body, 'i', name, pid, warp, cycle, None, Some(ev));
                    }
                    TraceEvent::Trap { cycle, warp, cause, .. } => {
                        chrome_event(&mut body, 'i', cause, pid, warp, cycle, None, Some(ev));
                    }
                }
            }
            // SFU occupancy counter track.
            sfu_deltas.sort(); // by cycle, then delta (releases before acquires on ties is fine: both orders are deterministic)
            let mut level = 0i64;
            let mut i = 0;
            while i < sfu_deltas.len() {
                let cycle = sfu_deltas[i].0;
                while i < sfu_deltas.len() && sfu_deltas[i].0 == cycle {
                    level += sfu_deltas[i].1;
                    i += 1;
                }
                let _ = writeln!(
                    body,
                    "{{\"ph\":\"C\",\"name\":\"sfu_lanes\",\"pid\":{pid},\"tid\":0,\"ts\":{cycle},\
                     \"args\":{{\"lanes\":{level}}}}},"
                );
            }

            // Metadata: process + thread names, emitted before the body.
            let pname = format!("{} · launch {}", cell.label, launch_idx);
            chrome_meta(&mut out, "process_name", pid, None, &pname);
            warps_seen.sort_unstable();
            for w in &warps_seen {
                chrome_meta(&mut out, "thread_name", pid, Some(*w), &format!("warp {w}"));
            }
            if used_sched {
                chrome_meta(&mut out, "thread_name", pid, Some(TID_SCHED), "scheduler");
            }
            if used_tag {
                chrome_meta(&mut out, "thread_name", pid, Some(TID_TAG), "tag cache");
            }
            if used_dram {
                chrome_meta(&mut out, "thread_name", pid, Some(TID_DRAM), "dram");
            }
            out.push_str(&body);
            pid += 1;
        }
    }
    // Terminate the array without a trailing comma: a harmless sentinel
    // metadata event keeps the emitter single-pass.
    out.push_str(
        "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":4294967295,\"args\":{\"name\":\"end\"}}\n",
    );
    out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":\"repro trace\",\"clock\":\"cycles\"}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IssueClass, MemSpace, RfKind};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Launch { cycle: 0, warps: 2 },
            TraceEvent::Issue {
                cycle: 1,
                warp: 0,
                pc: 0x8000_0000,
                mask: 0xFF,
                mnemonic: "lw",
                class: IssueClass::PerLane,
            },
            TraceEvent::Mem {
                cycle: 1,
                warp: 0,
                space: MemSpace::Dram,
                is_store: false,
                lanes: 8,
                transactions: 1,
                uniform: false,
                conflict_cycles: 0,
            },
            TraceEvent::TagCache { cycle: 1, warp: 0, hit: true, writeback: false },
            TraceEvent::Dram { cycle: 1, warp: 0, reads: 1, writes: 0, tag_txns: 0, done_at: 41 },
            TraceEvent::Stall { cycle: 2, warp: NO_WARP, cause: StallCause::Idle, cycles: 39 },
            TraceEvent::Sfu { cycle: 41, warp: 1, lanes: 8, latency: 12 },
            TraceEvent::RfTransition {
                cycle: 41,
                warp: 1,
                rf: RfKind::Data,
                reg: 10,
                to_vector: true,
            },
            TraceEvent::Barrier { cycle: 42, warp: 1, release: false },
        ]
    }

    #[test]
    fn jsonl_one_line_per_event() {
        let events = sample();
        let cells = [TraceCell { label: "Test [purecap]", events: &events }];
        let out = to_jsonl(&cells);
        assert_eq!(out.lines().count(), events.len());
        assert!(out.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(out.contains("\"type\":\"issue\""));
        assert!(out.contains("\"pc\":\"0x80000000\""));
        assert!(out.contains("\"cause\":\"idle\""));
        assert!(out.contains("\"class\":\"per_lane\""));
    }

    #[test]
    fn chrome_is_valid_and_has_tracks() {
        let events = sample();
        let cells = [TraceCell { label: "Test", events: &events }];
        let out = to_chrome(&cells);
        crate::validate::validate_chrome(&out).expect("chrome export validates");
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("warp 0"));
        assert!(out.contains("sfu_lanes"));
        assert!(out.contains("tag cache"));
    }

    #[test]
    fn multi_launch_splits_processes() {
        let mut events = sample();
        events.push(TraceEvent::Launch { cycle: 0, warps: 2 });
        events.push(TraceEvent::Issue {
            cycle: 1,
            warp: 0,
            pc: 0x8000_0004,
            mask: 1,
            mnemonic: "add",
            class: IssueClass::Scalarised,
        });
        let cells = [TraceCell { label: "Two", events: &events }];
        let out = to_chrome(&cells);
        assert!(out.contains("Two · launch 0"));
        assert!(out.contains("Two · launch 1"));
    }

    #[test]
    fn exports_are_deterministic() {
        let events = sample();
        let cells = [TraceCell { label: "Det", events: &events }];
        assert_eq!(to_chrome(&cells), to_chrome(&cells));
        assert_eq!(to_jsonl(&cells), to_jsonl(&cells));
    }

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
