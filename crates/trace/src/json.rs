//! A minimal recursive-descent JSON parser, sufficient to validate trace
//! exports without pulling in an external dependency (the workspace is
//! deliberately free of third-party crates).
//!
//! Supports the full JSON grammar except that numbers are parsed as `f64`
//! (trace files only contain integers well within `f64`'s exact range).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Fetch `key` from an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// A parse error with byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error occurred.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
///
/// # Errors
///
/// Returns a [`ParseError`] locating the first syntax error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not expected in trace output;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 3; // +1 below covers the 4th digit
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    s.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Multi-byte UTF-8 scalar: decode exactly one (the input
                    // is a &str, so the sequence is valid; only inspect its
                    // own bytes to keep parsing linear in the input size).
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("bad utf-8"))?;
                    s.push(chunk.chars().next().unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| ParseError { offset: start, message: format!("invalid number '{text}'") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,{"b":"x"},false],"c":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].get("b").unwrap().as_str(), Some("x"));
        assert!(v.get("c").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn parses_unicode_escape() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Value::Str("Aé".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
    }
}
