//! Structured event tracing for the CHERI-SIMT model.
//!
//! This crate is the observability layer of the simulator: the SM pipeline
//! ([`cheri-simt`]), the memory hierarchy ([`simt-mem`]) and the register
//! files ([`simt-regfile`]) emit typed [`TraceEvent`]s into an [`EventSink`]
//! when one is attached, and emit nothing (at zero cost beyond a branch on an
//! `Option`) when none is. Every event mirrors one of the hardware
//! performance counters in `KernelStats`, so an exported trace can always be
//! reconciled exactly against the aggregate statistics of the run that
//! produced it — e.g. the number of [`TraceEvent::Issue`] events equals the
//! `instrs` counter.
//!
//! Two sink implementations are provided:
//!
//! * [`VecSink`] — unbounded, retains every event; used by the `repro trace`
//!   exporter where the full stream is needed.
//! * [`RingSink`] — bounded ring buffer that overwrites the *oldest* events
//!   once full and counts how many were dropped; the flight-recorder sink
//!   (the structured successor of the removed `Sm::enable_trace` ring).
//!
//! Exporters for JSON-lines and the Chrome trace-event format (viewable in
//! Perfetto or `chrome://tracing`) live in [`export`]; a dependency-free JSON
//! parser and trace validator live in [`json`] and [`validate`]. See
//! `docs/TRACING.md` for the full schema.
//!
//! [`cheri-simt`]: https://example.org/cheri-simt-rs
//! [`simt-mem`]: https://example.org/cheri-simt-rs
//! [`simt-regfile`]: https://example.org/cheri-simt-rs

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;

pub mod export;
pub mod json;
pub mod validate;

/// Sentinel "warp id" used by events that are not attributable to a single
/// warp (e.g. whole-SM idle stalls, where *no* warp was ready to issue).
pub const NO_WARP: u32 = u32::MAX;

/// Cause of a pipeline stall, mirroring `StallBreakdown` in `cheri-simt`
/// field by field. Each emitted [`TraceEvent::Stall`] accounts a number of
/// cycles to exactly one cause, and per-cause cycle sums reconcile with the
/// corresponding `StallBreakdown` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallCause {
    /// Capability stores serialise through the shared store buffer
    /// (`StallBreakdown::csc_serialisation`).
    CscSerialisation,
    /// Bank conflict on the shared scalarised vector register file
    /// (`StallBreakdown::shared_vrf_conflict`).
    SharedVrfConflict,
    /// VRF slot spill/fill traffic (`StallBreakdown::spill_fill`).
    SpillFill,
    /// Extra flits for multi-flit capability memory accesses
    /// (`StallBreakdown::cap_multi_flit`).
    CapMultiFlit,
    /// No warp was ready to issue (`StallBreakdown::idle`). Emitted with
    /// warp = [`NO_WARP`].
    Idle,
}

impl StallCause {
    /// Stable lower-snake-case name used in exports (matches the
    /// `StallBreakdown` field name).
    pub fn name(self) -> &'static str {
        match self {
            StallCause::CscSerialisation => "csc_serialisation",
            StallCause::SharedVrfConflict => "shared_vrf_conflict",
            StallCause::SpillFill => "spill_fill",
            StallCause::CapMultiFlit => "cap_multi_flit",
            StallCause::Idle => "idle",
        }
    }
}

/// Which memory space a warp-wide access hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Global memory behind the coalescing unit and DRAM model.
    Dram,
    /// Banked shared local memory.
    Scratch,
    /// Access absorbed by the capability stack cache (no DRAM traffic).
    StackCache,
}

impl MemSpace {
    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            MemSpace::Dram => "dram",
            MemSpace::Scratch => "scratch",
            MemSpace::StackCache => "stack_cache",
        }
    }
}

/// How the execute stage ran one issued instruction: once per warp over
/// compact (uniform/affine) operands, or once per active lane. Decided by
/// a pure pre-issue classifier, so the class on the [`TraceEvent::Issue`]
/// event always agrees with what execute did and with the
/// `KernelStats::scalarised_issues` counter it mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueClass {
    /// Warp-wide fast path: the result was computed once for the whole
    /// warp from compact operands.
    Scalarised,
    /// Lane-wise execution (divergent operands, memory operations,
    /// barriers, traps — anything off the fast path).
    PerLane,
}

impl IssueClass {
    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            IssueClass::Scalarised => "scalarised",
            IssueClass::PerLane => "per_lane",
        }
    }
}

/// Which register file a residency transition happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfKind {
    /// The 32-bit data register file.
    Data,
    /// The 33-bit capability metadata register file.
    Meta,
}

impl RfKind {
    /// Stable name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            RfKind::Data => "data",
            RfKind::Meta => "meta",
        }
    }
}

/// One structured trace event. Every variant carries the cycle it occurred
/// on; warp-attributable events carry the warp id. Variants map one-to-one
/// onto `KernelStats` counters (see `docs/TRACING.md` for the reconciliation
/// table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A kernel launch began: the SM was reset and starts executing a fresh
    /// program. Partitions the stream of a multi-launch benchmark.
    Launch {
        /// Cycle of the reset (always 0: the cycle counter restarts).
        cycle: u64,
        /// Warps activated for this launch.
        warps: u32,
    },
    /// One instruction issued for one warp (mirrors `KernelStats::instrs`;
    /// the popcount of `mask` sums to `KernelStats::thread_instrs`).
    Issue {
        /// Cycle the instruction issued.
        cycle: u64,
        /// Issuing warp.
        warp: u32,
        /// Program counter of the instruction.
        pc: u32,
        /// Active-thread mask.
        mask: u64,
        /// Instruction mnemonic.
        mnemonic: &'static str,
        /// How execute ran it: warp-wide over compact operands
        /// (`Scalarised` issues mirror `KernelStats::scalarised_issues`)
        /// or lane-wise.
        class: IssueClass,
    },
    /// Cycles lost to a pipeline stall, attributed to one cause.
    Stall {
        /// Cycle the stall was charged on.
        cycle: u64,
        /// Stalled warp, or [`NO_WARP`] for whole-SM idle stalls.
        warp: u32,
        /// Stall cause (mirrors a `StallBreakdown` field).
        cause: StallCause,
        /// Cycles charged.
        cycles: u64,
    },
    /// Shape of one coalesced warp-wide memory access.
    Mem {
        /// Cycle the access was charged on.
        cycle: u64,
        /// Accessing warp.
        warp: u32,
        /// Memory space hit.
        space: MemSpace,
        /// True for stores, false for loads.
        is_store: bool,
        /// Active lanes participating.
        lanes: u32,
        /// 64-byte DRAM transactions generated (0 for scratchpad and
        /// stack-cache hits).
        transactions: u32,
        /// All lanes hit the same address (broadcast).
        uniform: bool,
        /// Extra cycles serialising scratchpad bank conflicts (0 for DRAM).
        conflict_cycles: u32,
    },
    /// One tag-cache lookup (mirrors `TagCacheStats`).
    TagCache {
        /// Cycle of the lookup.
        cycle: u64,
        /// Warp whose access triggered the lookup.
        warp: u32,
        /// True on hit, false on miss.
        hit: bool,
        /// A dirty line was written back to serve this miss.
        writeback: bool,
    },
    /// A batch of transactions entered the DRAM model.
    Dram {
        /// Cycle the batch was enqueued.
        cycle: u64,
        /// Warp that generated the traffic, or [`NO_WARP`] for traffic not
        /// tied to one warp.
        warp: u32,
        /// Read transactions.
        reads: u32,
        /// Write transactions.
        writes: u32,
        /// Tag-controller transactions added on top.
        tag_txns: u32,
        /// Cycle the batch completes (queueing included).
        done_at: u64,
    },
    /// A warp suspended on the shared SFU (mirrors
    /// `KernelStats::sfu_requests`).
    Sfu {
        /// Cycle the warp suspended.
        cycle: u64,
        /// Suspending warp.
        warp: u32,
        /// Active lanes occupying SFU slots.
        lanes: u32,
        /// Cycles until the warp resumes.
        latency: u64,
    },
    /// A register changed residency class in a compressed register file
    /// (scalar/affine SRF entry vs full VRF vector) — the event stream of
    /// the non-vectorised-operand (NVO) optimisation.
    RfTransition {
        /// Cycle of the write that caused the transition.
        cycle: u64,
        /// Writing warp.
        warp: u32,
        /// Which register file.
        rf: RfKind,
        /// Architectural register number.
        reg: u32,
        /// True when the value became a VRF vector, false when it collapsed
        /// back to a scalar/affine SRF form.
        to_vector: bool,
    },
    /// A warp arrived at a barrier (`release == false`, mirrors
    /// `KernelStats::barriers`) or was released from one (`release == true`).
    Barrier {
        /// Cycle of arrival/release.
        cycle: u64,
        /// The warp in question.
        warp: u32,
        /// False on arrival, true on release.
        release: bool,
    },
    /// A warp-precise trap was raised (mirrors `FaultStats::traps`). With
    /// `suppressed == false` the run aborts immediately after this event;
    /// with `suppressed == true` (`TrapPolicy::MaskLanes`) the faulting
    /// lanes were disabled and the warp keeps running.
    Trap {
        /// Cycle the trap was raised on.
        cycle: u64,
        /// Faulting warp.
        warp: u32,
        /// Program counter of the faulting instruction.
        pc: u32,
        /// Bitmask of all faulting lanes (its popcount sums to
        /// `FaultStats::faulting_lanes`).
        mask: u64,
        /// Stable cause name of the leader lane (`TrapCause::name`, e.g.
        /// `cheri:bounds`, `mem:unmapped`).
        cause: &'static str,
        /// True when the trap was absorbed by `TrapPolicy::MaskLanes`.
        suppressed: bool,
    },
}

impl TraceEvent {
    /// Stable lower-snake-case event-type name used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Launch { .. } => "launch",
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::Mem { .. } => "mem",
            TraceEvent::TagCache { .. } => "tag_cache",
            TraceEvent::Dram { .. } => "dram",
            TraceEvent::Sfu { .. } => "sfu",
            TraceEvent::RfTransition { .. } => "rf_transition",
            TraceEvent::Barrier { .. } => "barrier",
            TraceEvent::Trap { .. } => "trap",
        }
    }

    /// Cycle the event occurred on.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Launch { cycle, .. }
            | TraceEvent::Issue { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::Mem { cycle, .. }
            | TraceEvent::TagCache { cycle, .. }
            | TraceEvent::Dram { cycle, .. }
            | TraceEvent::Sfu { cycle, .. }
            | TraceEvent::RfTransition { cycle, .. }
            | TraceEvent::Barrier { cycle, .. }
            | TraceEvent::Trap { cycle, .. } => cycle,
        }
    }

    /// Warp the event is attributed to, if any ([`NO_WARP`] and launch
    /// markers yield `None`).
    pub fn warp(&self) -> Option<u32> {
        let w = match *self {
            TraceEvent::Launch { .. } => NO_WARP,
            TraceEvent::Issue { warp, .. }
            | TraceEvent::Stall { warp, .. }
            | TraceEvent::Mem { warp, .. }
            | TraceEvent::TagCache { warp, .. }
            | TraceEvent::Dram { warp, .. }
            | TraceEvent::Sfu { warp, .. }
            | TraceEvent::RfTransition { warp, .. }
            | TraceEvent::Barrier { warp, .. }
            | TraceEvent::Trap { warp, .. } => warp,
        };
        if w == NO_WARP {
            None
        } else {
            Some(w)
        }
    }
}

/// Destination for trace events.
///
/// Implementations must be cheap per call: the pipeline emits from its inner
/// loop. `Send` is required because traced SMs cross thread boundaries in the
/// parallel suite runner; `Debug` because the SM itself derives `Debug`.
pub trait EventSink: Send + std::fmt::Debug {
    /// Record one event.
    fn emit(&mut self, ev: TraceEvent);

    /// Number of events this sink has discarded (bounded sinks only).
    fn dropped(&self) -> u64 {
        0
    }

    /// Downcasting support so callers can recover a concrete sink after
    /// detaching it from the SM.
    fn as_any(&self) -> &dyn Any;
}

/// Unbounded sink that retains every event in emission order.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    events: Vec<TraceEvent>,
}

impl VecSink {
    /// Create an empty sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, returning the recorded events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl EventSink for VecSink {
    fn emit(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Bounded ring-buffer sink: keeps the **most recent** `capacity` events,
/// overwriting the oldest once full, and counts every overwritten event in
/// [`EventSink::dropped`].
#[derive(Debug, Clone)]
pub struct RingSink {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Create a ring holding at most `capacity` events (`capacity == 0`
    /// drops everything).
    pub fn new(capacity: usize) -> Self {
        RingSink { events: VecDeque::with_capacity(capacity.min(4096)), capacity, dropped: 0 }
    }

    /// The retained (most recent) events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Consume the sink, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into_iter().collect()
    }
}

impl EventSink for RingSink {
    fn emit(&mut self, ev: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(cycle: u64) -> TraceEvent {
        TraceEvent::Issue {
            cycle,
            warp: 0,
            pc: 0x8000_0000,
            mask: 0xF,
            mnemonic: "add",
            class: IssueClass::PerLane,
        }
    }

    #[test]
    fn vec_sink_retains_everything() {
        let mut s = VecSink::new();
        for c in 0..100 {
            s.emit(issue(c));
        }
        assert_eq!(s.events().len(), 100);
        assert_eq!(s.dropped(), 0);
        assert_eq!(s.events()[7].cycle(), 7);
    }

    #[test]
    fn ring_sink_overwrites_oldest_and_counts_drops() {
        let mut s = RingSink::new(10);
        for c in 0..25 {
            s.emit(issue(c));
        }
        assert_eq!(s.dropped(), 15);
        let kept: Vec<u64> = s.events().map(TraceEvent::cycle).collect();
        assert_eq!(kept, (15..25).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut s = RingSink::new(0);
        s.emit(issue(0));
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.events().count(), 0);
    }

    #[test]
    fn downcast_through_dyn() {
        let mut sink: Box<dyn EventSink> = Box::new(VecSink::new());
        sink.emit(issue(3));
        let vec = sink.as_any().downcast_ref::<VecSink>().unwrap();
        assert_eq!(vec.events().len(), 1);
    }

    #[test]
    fn event_accessors() {
        let ev = TraceEvent::Stall { cycle: 9, warp: NO_WARP, cause: StallCause::Idle, cycles: 4 };
        assert_eq!(ev.kind(), "stall");
        assert_eq!(ev.cycle(), 9);
        assert_eq!(ev.warp(), None);
        assert_eq!(issue(1).warp(), Some(0));
        assert_eq!(StallCause::SharedVrfConflict.name(), "shared_vrf_conflict");
        assert_eq!(IssueClass::Scalarised.name(), "scalarised");
        assert_eq!(IssueClass::PerLane.name(), "per_lane");
    }
}
