//! Schema validation for exported traces.
//!
//! Used by the `repro validate-trace` subcommand and the CI smoke test: a
//! trace file is parsed with the built-in JSON parser and checked against
//! the event schema documented in `docs/TRACING.md`.

use crate::json::{parse, Value};

/// Summary of a successfully validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Total events (Chrome: entries in `traceEvents` minus metadata;
    /// JSONL: lines).
    pub events: u64,
    /// Metadata entries (Chrome `"ph":"M"` records; 0 for JSONL).
    pub metadata: u64,
    /// Counter samples (Chrome `"ph":"C"` records; 0 for JSONL).
    pub counters: u64,
    /// Distinct (pid) processes seen (Chrome only).
    pub processes: u64,
}

/// JSONL event-type names and the numeric fields each must carry.
const JSONL_REQUIRED: &[(&str, &[&str])] = &[
    ("launch", &["cycle", "warps"]),
    ("issue", &["cycle", "warp"]),
    ("stall", &["cycle", "cycles"]),
    ("mem", &["cycle", "warp", "lanes", "transactions", "conflict_cycles"]),
    ("tag_cache", &["cycle", "warp"]),
    ("dram", &["cycle", "reads", "writes", "tag_txns", "done_at"]),
    ("sfu", &["cycle", "warp", "lanes", "latency"]),
    ("rf_transition", &["cycle", "warp", "reg"]),
    ("barrier", &["cycle", "warp"]),
    ("trap", &["cycle", "warp"]),
];

fn check_num(obj: &Value, key: &str, ctx: &str) -> Result<(), String> {
    match obj.get(key) {
        Some(Value::Num(_)) => Ok(()),
        Some(_) => Err(format!("{ctx}: field '{key}' is not a number")),
        None => Err(format!("{ctx}: missing field '{key}'")),
    }
}

/// The execution classes an `issue` event may carry (mirrors
/// `IssueClass::name`).
const ISSUE_CLASSES: &[&str] = &["scalarised", "per_lane"];

/// Typed-payload checks beyond the numeric required fields: `issue` events
/// must say how they executed, so the scalarisation rate is recoverable
/// from any validated trace.
fn check_typed(obj: &Value, ty: &str, ctx: &str) -> Result<(), String> {
    if ty == "issue" {
        let class = obj
            .get("class")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: issue missing string 'class'"))?;
        if !ISSUE_CLASSES.contains(&class) {
            return Err(format!("{ctx}: unknown issue class '{class}'"));
        }
    }
    Ok(())
}

/// Validate a Chrome trace-event file: a JSON object with a `traceEvents`
/// array in which every entry has `ph`/`pid`/`name`, duration events have
/// numeric `ts` (and `dur` for `"X"`), and `args` payloads of typed events
/// carry a `type` tag.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_chrome(input: &str) -> Result<Summary, String> {
    let doc = parse(input).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .ok_or_else(|| "missing 'traceEvents' key".to_string())?
        .as_arr()
        .ok_or_else(|| "'traceEvents' is not an array".to_string())?;
    let mut summary = Summary::default();
    let mut pids: Vec<u64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        let obj = ev.as_obj().ok_or_else(|| format!("{ctx}: not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: missing string 'ph'"))?;
        if obj.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("{ctx}: missing string 'name'"));
        }
        let pid = obj
            .get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| format!("{ctx}: missing 'pid'"))?;
        match ph {
            "M" => summary.metadata += 1,
            "C" => {
                check_num(ev, "ts", &ctx)?;
                summary.counters += 1;
            }
            "X" => {
                check_num(ev, "ts", &ctx)?;
                check_num(ev, "dur", &ctx)?;
                check_num(ev, "tid", &ctx)?;
                summary.events += 1;
                if !pids.contains(&(pid as u64)) {
                    pids.push(pid as u64);
                }
            }
            "i" => {
                check_num(ev, "ts", &ctx)?;
                check_num(ev, "tid", &ctx)?;
                summary.events += 1;
                if !pids.contains(&(pid as u64)) {
                    pids.push(pid as u64);
                }
            }
            other => return Err(format!("{ctx}: unsupported phase '{other}'")),
        }
        if matches!(ph, "X" | "i") {
            let args = ev.get("args").ok_or_else(|| format!("{ctx}: missing 'args'"))?;
            let ty = args
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("{ctx}: args missing 'type' tag"))?;
            if !JSONL_REQUIRED.iter().any(|(name, _)| *name == ty) {
                return Err(format!("{ctx}: unknown event type '{ty}'"));
            }
            check_typed(args, ty, &ctx)?;
        }
    }
    summary.processes = pids.len() as u64;
    Ok(summary)
}

/// Validate a JSON-lines trace: every line is an object with string `cell`
/// and `type` fields, a known type name, and that type's required numeric
/// fields.
///
/// # Errors
///
/// Returns a description of the first schema violation.
pub fn validate_jsonl(input: &str) -> Result<Summary, String> {
    let mut summary = Summary::default();
    for (lineno, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ctx = format!("line {}", lineno + 1);
        let obj = parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        if obj.get("cell").and_then(Value::as_str).is_none() {
            return Err(format!("{ctx}: missing string 'cell'"));
        }
        let ty = obj
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: missing string 'type'"))?
            .to_string();
        let required = JSONL_REQUIRED
            .iter()
            .find(|(name, _)| *name == ty)
            .map(|(_, fields)| *fields)
            .ok_or_else(|| format!("{ctx}: unknown event type '{ty}'"))?;
        for field in required {
            check_num(&obj, field, &ctx)?;
        }
        check_typed(&obj, &ty, &ctx)?;
        summary.events += 1;
    }
    Ok(summary)
}

/// Validate a trace file of either format, auto-detected: a document whose
/// first non-whitespace text parses as a whole and contains `traceEvents`
/// is treated as Chrome format, otherwise as JSON-lines.
///
/// # Errors
///
/// Returns `(format-name, error)` rendered into one message on failure.
pub fn validate_auto(input: &str) -> Result<(&'static str, Summary), String> {
    if let Ok(doc) = parse(input) {
        if doc.get("traceEvents").is_some() {
            return validate_chrome(input)
                .map(|s| ("chrome", s))
                .map_err(|e| format!("chrome: {e}"));
        }
    }
    validate_jsonl(input).map(|s| ("jsonl", s)).map_err(|e| format!("jsonl: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{to_chrome, to_jsonl, TraceCell};
    use crate::{IssueClass, TraceEvent};

    fn events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Launch { cycle: 0, warps: 4 },
            TraceEvent::Issue {
                cycle: 1,
                warp: 2,
                pc: 0x8000_0010,
                mask: 0x3,
                mnemonic: "addi",
                class: IssueClass::Scalarised,
            },
            TraceEvent::Barrier { cycle: 5, warp: 2, release: false },
        ]
    }

    #[test]
    fn chrome_roundtrip_validates() {
        let evs = events();
        let out = to_chrome(&[TraceCell { label: "t", events: &evs }]);
        let s = validate_chrome(&out).unwrap();
        assert_eq!(s.events, 2); // launch is structural, not an entry
        assert_eq!(s.processes, 1);
        assert!(s.metadata >= 2);
    }

    #[test]
    fn jsonl_roundtrip_validates() {
        let evs = events();
        let out = to_jsonl(&[TraceCell { label: "t", events: &evs }]);
        let s = validate_jsonl(&out).unwrap();
        assert_eq!(s.events, 3);
    }

    #[test]
    fn auto_detects_format() {
        let evs = events();
        let chrome = to_chrome(&[TraceCell { label: "t", events: &evs }]);
        let jsonl = to_jsonl(&[TraceCell { label: "t", events: &evs }]);
        assert_eq!(validate_auto(&chrome).unwrap().0, "chrome");
        assert_eq!(validate_auto(&jsonl).unwrap().0, "jsonl");
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(validate_chrome("{}").is_err());
        assert!(validate_chrome(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(validate_jsonl("{\"type\":\"issue\"}\n").is_err()); // missing cell
        assert!(validate_jsonl("{\"cell\":\"c\",\"type\":\"bogus\"}\n").is_err());
        assert!(
            validate_jsonl("{\"cell\":\"c\",\"type\":\"issue\",\"cycle\":1}\n").is_err(),
            "issue without warp must fail"
        );
        assert!(
            validate_jsonl("{\"cell\":\"c\",\"type\":\"issue\",\"cycle\":1,\"warp\":0}\n").is_err(),
            "issue without class must fail"
        );
        assert!(
            validate_jsonl(
                "{\"cell\":\"c\",\"type\":\"issue\",\"cycle\":1,\"warp\":0,\"class\":\"weird\"}\n"
            )
            .is_err(),
            "unknown issue class must fail"
        );
    }
}
