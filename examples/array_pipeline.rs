//! Bulk array combinators (Section 5.1's programming model) on the
//! CHERI-protected SM: build a small statistics pipeline without writing a
//! single kernel by hand.
//!
//! ```text
//! cargo run --release --example array_pipeline
//! ```

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::Gpu;
use nocl_kir::{Expr, Mode};

fn main() {
    let mut gpu = Gpu::new(
        SmConfig::with_geometry(16, 32, CheriMode::On(CheriOpts::optimised())),
        Mode::PureCap,
    );

    // xs = [0, 1, ..., 9999]; ys = (xs * 3 + 1) mod 97
    let xs = gpu.iota(10_000).expect("iota");
    let ys = gpu
        .map("affine_mod", &xs, |x| (x * Expr::u32(3) + Expr::u32(1)) % Expr::u32(97))
        .expect("map");

    // dot(xs, ys), max(ys), and the running sum of ys — three classic
    // combinators, each compiled to capability-checked kernels.
    let prods = gpu.zip_map("dot_mul", &xs, &ys, |a, b| a * b).expect("zip_map");
    let dot = gpu.reduce("dot_sum", &prods, 0u32, |a, b| a + b).expect("reduce");
    let max = gpu.reduce("max", &ys, 0u32, |a, b| a.max(b)).expect("reduce max");
    let prefix = gpu.scan("psum", &ys, 0u32, |a, b| a + b).expect("scan");

    // Host checks.
    let h_ys: Vec<u32> = (0..10_000u32).map(|x| (x * 3 + 1) % 97).collect();
    let h_dot: u32 = h_ys.iter().enumerate().map(|(i, y)| i as u32 * y).sum();
    assert_eq!(dot, h_dot);
    assert_eq!(max, *h_ys.iter().max().unwrap());
    let got_prefix = gpu.read(&prefix);
    let mut acc = 0u32;
    for (i, y) in h_ys.iter().enumerate() {
        acc += y;
        assert_eq!(got_prefix[i], acc, "prefix[{i}]");
    }

    println!("dot(xs, ys)    = {dot}");
    println!("max(ys)        = {max}");
    println!("scan(ys)[9999] = {}", got_prefix[9999]);
    println!("\nfour combinator kernels, all capability-checked, all correct");
}
