//! The paper's Figure 3 — the NoCL histogram kernel — run in all four
//! compilation modes with a per-mode cost report.
//!
//! ```text
//! cargo run --release --example histogram
//! ```

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder, Mode};

/// Figure 3: shared-memory bins, barriers between the phases, `atomicAdd`.
fn histogram_kernel() -> Kernel {
    let mut k = KernelBuilder::new("histogram");
    let len = k.param_u32("len");
    let input = k.param_ptr("in", Elem::U8);
    let out = k.param_ptr("out", Elem::I32);
    let bins = k.shared("bins", Elem::I32, 256);
    let i = k.var_u32("i");
    // Initialise bins
    k.for_(i.clone(), k.thread_idx(), Expr::u32(256), k.block_dim(), |k| {
        k.store(&bins, i.clone(), Expr::i32(0));
    });
    k.barrier();
    // Update bins
    k.for_(i.clone(), k.thread_idx(), len, k.block_dim(), |k| {
        k.atomic_add(&bins, input.at(i.clone()), Expr::i32(1));
    });
    k.barrier();
    // Write bins to global memory
    k.for_(i.clone(), k.thread_idx(), Expr::u32(256), k.block_dim(), |k| {
        k.store(&out, i.clone(), bins.at(i.clone()));
    });
    k.finish()
}

fn main() {
    let n = 65_536u32;
    let input: Vec<u8> = (0..n).map(|i| (i * 37 % 251) as u8).collect();
    let mut expect = vec![0i32; 256];
    for &b in &input {
        expect[b as usize] += 1;
    }

    println!("{:<14} {:>12} {:>10} {:>8} {:>10}", "mode", "cycles", "instrs", "IPC", "barriers");
    let mut baseline_cycles = None;
    for (name, cheri, mode) in [
        ("baseline", CheriMode::Off, Mode::Baseline),
        ("cheri-opt", CheriMode::On(CheriOpts::optimised()), Mode::PureCap),
        ("rust-checked", CheriMode::Off, Mode::RustChecked),
        ("rust-full", CheriMode::Off, Mode::RustFull),
    ] {
        let mut gpu = Gpu::new(SmConfig::with_geometry(16, 32, cheri), mode);
        let d_in = gpu.alloc_from(&input);
        let d_out = gpu.alloc::<i32>(256);
        // One block spanning the whole SM, as in the paper.
        let bd = gpu.sm().config().threads();
        let stats = gpu
            .launch(
                &histogram_kernel(),
                Launch::new(1, bd),
                &[n.into(), (&d_in).into(), (&d_out).into()],
            )
            .expect("launch");
        assert_eq!(gpu.read(&d_out), expect, "{name}: wrong histogram");
        let base = *baseline_cycles.get_or_insert(stats.cycles);
        println!(
            "{:<14} {:>12} {:>10} {:>8.2} {:>10}   ({:+.1}% vs baseline)",
            name,
            stats.cycles,
            stats.instrs,
            stats.ipc(),
            stats.barriers,
            (stats.cycles as f64 / base as f64 - 1.0) * 100.0
        );
    }
    println!("\nall four modes produced the correct 256-bin histogram");
}
