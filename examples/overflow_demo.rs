//! The paper's Figure 1, live: a buffer overread that leaks a neighbouring
//! secret on an unprotected GPU, trapped deterministically by CHERI, and
//! panicked by the Rust port's software bounds check.
//!
//! ```text
//! cargo run --release --example overflow_demo
//! ```

use cheri_simt::trace::{RingSink, TraceEvent};
use cheri_simt::{CheriMode, CheriOpts, RunError, SmConfig, TrapCause};
use nocl::{Gpu, Launch, LaunchError};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder, Mode};

/// `out[0] = data[1]` — but `data` has exactly one element. The element
/// after it in device memory belongs to someone else.
fn overread_kernel() -> Kernel {
    let mut kb = KernelBuilder::new("overread");
    let data = kb.param_ptr("data", Elem::I32);
    let out = kb.param_ptr("out", Elem::I32);
    kb.if_(kb.global_id().eq_(Expr::u32(0)), |k| {
        k.store(&out, Expr::u32(0), data.at(Expr::u32(1))); // ptr[1]: overread
    });
    kb.finish()
}

fn main() {
    const SECRET: i32 = 0xC0DE;

    // Figure 1's locals `data` and `secret` are adjacent words; emulate
    // that layout by placing the secret in the word right after `data`.
    fn plant_secret(gpu: &mut Gpu, data_addr: u32) {
        gpu.sm_mut().memory_mut().write(data_addr + 4, SECRET as u32, 4).unwrap();
    }

    // --- Baseline: no protection ---------------------------------------
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::Off), Mode::Baseline);
    let data = gpu.alloc_from(&[0xDA1A]); // int data = 0xda1a;
    let out = gpu.alloc_from(&[0i32]);
    plant_secret(&mut gpu, data.addr()); // int secret = 0xc0de;
    gpu.launch(&overread_kernel(), Launch::new(1, 8), &[(&data).into(), (&out).into()])
        .expect("baseline runs without complaint");
    let leaked = gpu.read(&out)[0];
    println!("baseline GPU:   overread silently returns {leaked:#x} (the secret!)");
    assert_eq!(leaked, SECRET);

    // --- CHERI: deterministic hardware trap ----------------------------
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);
    let data = gpu.alloc_from(&[0xDA1A]);
    let out = gpu.alloc_from(&[0i32]);
    plant_secret(&mut gpu, data.addr());
    // Keep the last few events in a bounded ring: on a trap, the tail of
    // the issue stream shows how the kernel got there.
    gpu.sm_mut().set_sink(Box::new(RingSink::new(16)));
    match gpu.launch(&overread_kernel(), Launch::new(1, 8), &[(&data).into(), (&out).into()]) {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::Cheri(_)));
            println!("CHERI GPU:      {t}");
            println!("                instruction trace leading to the trap:");
            let sink = gpu.sm_mut().take_sink().expect("sink was attached");
            let ring = sink.as_any().downcast_ref::<RingSink>().expect("RingSink");
            for e in ring.events() {
                if let TraceEvent::Issue { cycle, warp, pc, mnemonic, .. } = e {
                    println!("                  [{cycle:>8}] w{warp:02} {pc:08x}: {mnemonic}");
                }
            }
        }
        other => panic!("expected a CHERI trap, got {other:?}"),
    }

    // --- Rust port: software bounds check ------------------------------
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::Off), Mode::RustChecked);
    let data = gpu.alloc_from(&[0xDA1A]);
    let out = gpu.alloc_from(&[0i32]);
    match gpu.launch(&overread_kernel(), Launch::new(1, 8), &[(&data).into(), (&out).into()]) {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::Environment));
            println!("Rust port:      panic at pc {:#x} (index out of bounds)", t.pc);
        }
        other => panic!("expected a bounds-check panic, got {other:?}"),
    }

    println!("\nSame kernel, three worlds: leak / trap / panic.");
}
