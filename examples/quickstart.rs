//! Quickstart: write a CUDA-style kernel, run it on the CHERI-SIMT model in
//! pure-capability mode, and inspect the hardware counters.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, KernelBuilder, Mode};

fn main() {
    // SAXPY: y[i] = a * x[i] + y[i], written against the NoCL-style IR.
    let mut kb = KernelBuilder::new("saxpy");
    let n = kb.param_u32("n");
    let a = kb.param_f32("a");
    let x = kb.param_ptr("x", Elem::F32);
    let y = kb.param_ptr("y", Elem::F32);
    let i = kb.var_u32("i");
    kb.for_(i.clone(), kb.global_id(), n, kb.global_threads(), |k| {
        k.store(&y, i.clone(), a.clone() * x.at(i.clone()) + y.at(i.clone()));
    });
    let kernel = kb.finish();

    // A CHERI-enabled SM in the paper's optimised configuration. Every
    // pointer the kernel receives is a tagged, bounded capability; loads
    // and stores are hardware bounds-checked.
    let mut gpu = Gpu::new(
        SmConfig::with_geometry(16, 32, CheriMode::On(CheriOpts::optimised())),
        Mode::PureCap,
    );

    let n = 4096u32;
    let xs: Vec<f32> = (0..n).map(|v| v as f32).collect();
    let ys: Vec<f32> = (0..n).map(|v| 0.5 * v as f32).collect();
    let dx = gpu.alloc_from(&xs);
    let dy = gpu.alloc_from(&ys);

    let stats = gpu
        .launch(
            &kernel,
            Launch::new(8, 128),
            &[n.into(), 2.0f32.into(), (&dx).into(), (&dy).into()],
        )
        .expect("launch");

    let result = gpu.read(&dy);
    assert_eq!(result[100], 2.0 * 100.0 + 50.0);
    println!("saxpy over {n} elements: OK");
    println!(
        "cycles {}  warp-instructions {}  IPC {:.2}  DRAM {:.2} B/cycle",
        stats.cycles,
        stats.instrs,
        stats.ipc(),
        stats.dram_bytes_per_cycle()
    );
    println!(
        "CHERI instructions: {:.1}% of the dynamic stream {:?}",
        stats.cheri_fraction() * 100.0,
        stats.cheri_histogram
    );
    println!(
        "capability metadata stayed fully compressed: peak metadata VRF residency = {}",
        stats.peak_meta_vrf_resident
    );
}
