//! Tour of the Table-1 benchmark suite: run all fourteen benchmarks under
//! Baseline and CHERI (Optimised) and print a miniature Figure 13.
//!
//! ```text
//! cargo run --release --example suite_tour
//! ```

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::Gpu;
use nocl_kir::Mode;
use nocl_suite::{catalog, Scale};

fn main() {
    let geometry = |cheri| SmConfig::with_geometry(16, 32, cheri);

    println!("running the NoCL suite (Test scale, 16 warps x 32 lanes)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "base cyc", "cheri cyc", "ovhd", "cheri%"
    );

    let mut base_gpu = Gpu::new(geometry(CheriMode::Off), Mode::Baseline);
    let mut cheri_gpu = Gpu::new(geometry(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);

    let mut ratios = Vec::new();
    for b in catalog() {
        let base = b.run(&mut base_gpu, Scale::Test).expect("baseline run");
        let cheri = b.run(&mut cheri_gpu, Scale::Test).expect("cheri run");
        let r = cheri.cycles as f64 / base.cycles as f64;
        ratios.push(r);
        println!(
            "{:<12} {:>12} {:>12} {:>8.1}% {:>8.1}%",
            b.name(),
            base.cycles,
            cheri.cycles,
            (r - 1.0) * 100.0,
            cheri.cheri_fraction() * 100.0
        );
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("\ngeomean CHERI execution-time overhead: {:+.1}%", (geomean - 1.0) * 100.0);
    println!("(the paper reports +1.6% on FPGA at 64 warps x 32 lanes)");
}
