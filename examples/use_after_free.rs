//! Temporal safety beyond the paper's evaluation: `Gpu::free` runs a
//! Cornucopia-style revocation sweep, so a dangling capability dies with
//! its buffer and the next dereference traps deterministically.
//!
//! ```text
//! cargo run --release --example use_after_free
//! ```

use cheri_simt::{CheriMode, CheriOpts, RunError, SmConfig, TrapCause};
use nocl::{Gpu, Launch};
use nocl_kir::{Elem, Expr, KernelBuilder, Mode};

fn main() {
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);

    // out[0] = data[0]
    let mut kb = KernelBuilder::new("reader");
    let data = kb.param_ptr("data", Elem::I32);
    let out = kb.param_ptr("out", Elem::I32);
    kb.if_(kb.global_id().eq_(Expr::u32(0)), |k| {
        k.store(&out, Expr::u32(0), data.at(Expr::u32(0)));
    });
    let kernel = kb.finish();

    let buf = gpu.alloc_from(&[1234i32; 16]);
    let out = gpu.alloc::<i32>(4);

    // While the buffer is live, the kernel reads it fine.
    gpu.launch(&kernel, Launch::new(1, 8), &[(&buf).into(), (&out).into()]).expect("live read");
    println!("live buffer:  kernel read {}", gpu.read(&out)[0]);

    // Free the buffer: the revocation sweep finds every capability in
    // device memory pointing into it (here: the one in the kernel argument
    // block) and clears its tag.
    let revoked = gpu.sm_mut().memory_mut().revoke_region(buf.addr(), buf.bytes());
    println!(
        "free(buf):    revocation sweep cleared {revoked} dangling capabilit{}",
        if revoked == 1 { "y" } else { "ies" }
    );

    // Re-running the resident kernel against the swept argument block is a
    // use-after-free — and a deterministic tag-violation trap.
    gpu.sm_mut().reset();
    match gpu.sm_mut().run(1_000_000) {
        Err(RunError::Trap(t)) => {
            assert_eq!(t.cause, TrapCause::Cheri(cheri_cap::CapException::TagViolation));
            println!("after free:   {t}");
        }
        other => panic!("use-after-free must trap, got {other:?}"),
    }
    println!("\nuse-after-free is impossible to exploit: the capability is dead.");
}
