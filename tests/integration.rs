//! Workspace-level integration tests: the full stack (capabilities → ISA →
//! compiler → SM → runtime → suite) exercised together, checking the
//! paper's headline claims in miniature.

use cheri_simt::{CheriMode, CheriOpts, SmConfig};
use nocl::Gpu;
use nocl_kir::Mode;
use nocl_suite::{catalog, run_suite, Scale};
use repro::{geomean, Config, Harness};

/// The three evaluation configurations agree functionally on the whole
/// suite (the artifact's `sweep.py test`).
#[test]
fn three_configurations_pass_the_suite() {
    for (cheri, mode) in [
        (CheriMode::Off, Mode::Baseline),
        (CheriMode::On(CheriOpts::naive()), Mode::PureCap),
        (CheriMode::On(CheriOpts::optimised()), Mode::PureCap),
    ] {
        let mut gpu = Gpu::new(SmConfig::small(cheri), mode);
        let results = run_suite(&mut gpu, Scale::Test).expect("suite");
        assert_eq!(results.len(), 14);
    }
}

/// Headline claim: CHERI's execution-time overhead is small (the paper
/// reports 1.6% geomean on FPGA; the model must stay in single digits).
#[test]
fn cheri_execution_overhead_is_small() {
    let mut h = Harness::quick();
    let base: Vec<u64> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(_, s)| s.cycles).collect();
    let cheri: Vec<u64> = h.results(Config::CheriOpt).iter().map(|(_, s)| s.cycles).collect();
    let g = geomean(base.iter().zip(&cheri).map(|(b, c)| *c as f64 / *b as f64));
    assert!((0.98..1.08).contains(&g), "CHERI overhead geomean {g:.3} out of the expected band");
}

/// Headline claim: software bounds checking costs far more than CHERI.
#[test]
fn rust_costs_more_than_cheri() {
    let mut h = Harness::quick();
    let base: Vec<u64> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(_, s)| s.cycles).collect();
    let cheri: Vec<u64> = h.results(Config::CheriOpt).iter().map(|(_, s)| s.cycles).collect();
    let rust: Vec<u64> = h.results(Config::RustChecked).iter().map(|(_, s)| s.cycles).collect();
    let g_cheri = geomean(base.iter().zip(&cheri).map(|(b, c)| *c as f64 / *b as f64));
    let g_rust = geomean(base.iter().zip(&rust).map(|(b, c)| *c as f64 / *b as f64));
    assert!(
        g_rust - 1.0 > 5.0 * (g_cheri - 1.0).max(0.001),
        "rust {g_rust:.3} vs cheri {g_cheri:.3}"
    );
}

/// Headline claim: DRAM traffic is essentially unchanged under CHERI.
#[test]
fn dram_traffic_unchanged_under_cheri() {
    let mut h = Harness::quick();
    let base: Vec<u64> =
        h.results(Config::Base { eighths: 3 }).iter().map(|(_, s)| s.dram.total_bytes()).collect();
    let cheri: Vec<u64> =
        h.results(Config::CheriOpt).iter().map(|(_, s)| s.dram.total_bytes()).collect();
    let g = geomean(base.iter().zip(&cheri).map(|(b, c)| *c as f64 / (*b).max(1) as f64));
    assert!(g < 1.05, "DRAM traffic ratio {g:.3}");
}

/// Headline claim: with NVO, capability metadata stays out of the VRF for
/// every benchmark except BlkStencil, and no benchmark uses more than half
/// the registers for capabilities.
#[test]
fn metadata_compression_claims() {
    let mut h = Harness::quick();
    for (name, st) in h.results(Config::CheriOpt).clone() {
        if name == "BlkStencil" {
            assert!(st.peak_meta_vrf_resident > 0);
        } else {
            assert_eq!(st.peak_meta_vrf_resident, 0, "{name}");
        }
        assert!(st.cap_regs_used <= 16, "{name}: {} cap registers", st.cap_regs_used);
    }
}

/// Full-geometry smoke test: the paper's 2,048-thread SM runs a benchmark
/// end to end in the optimised CHERI configuration.
#[test]
fn full_geometry_smoke() {
    let mut gpu = Gpu::new(SmConfig::full(CheriMode::On(CheriOpts::optimised())), Mode::PureCap);
    let vecadd = catalog()[0];
    let stats = vecadd.run(&mut gpu, Scale::Test).expect("vecadd at 64x32");
    assert!(stats.instrs > 0);
    assert_eq!(stats.peak_meta_vrf_resident, 0);
}
