//! Workspace-level security tests: the protection properties the paper's
//! threat model promises (Section 4.2), demonstrated through the public
//! runtime API.

use cheri_simt::{CheriMode, CheriOpts, RunError, SmConfig, TrapCause};
use nocl::{Gpu, Launch, LaunchError};
use nocl_kir::{Elem, Expr, Kernel, KernelBuilder, Mode};

fn cheri_gpu() -> Gpu {
    Gpu::new(SmConfig::small(CheriMode::On(CheriOpts::optimised())), Mode::PureCap)
}

fn expect_cheri_trap(r: Result<cheri_simt::KernelStats, LaunchError>) -> TrapCause {
    match r {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::Cheri(_)), "not a CHERI trap: {t}");
            t.cause
        }
        other => panic!("expected CHERI trap, got {other:?}"),
    }
}

/// Spatial safety: out-of-bounds reads and writes trap, at both ends.
#[test]
fn out_of_bounds_accesses_trap() {
    for probe in [-1i32, 64, 1_000_000] {
        let mut k = KernelBuilder::new(&format!("oob{probe}"));
        let buf = k.param_ptr("buf", Elem::I32);
        k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
            k.store(&buf, Expr::i32(probe).as_u32(), Expr::i32(1));
        });
        let kernel = k.finish();
        let mut gpu = cheri_gpu();
        let b = gpu.alloc::<i32>(64);
        expect_cheri_trap(gpu.launch(&kernel, Launch::new(1, 8), &[(&b).into()]));
    }
}

/// Referential integrity: data written as integers never becomes a
/// dereferenceable capability, even if it is bit-for-bit identical to one.
#[test]
fn capabilities_cannot_be_forged_from_data() {
    // The kernel copies a capability byte-by-byte through integer loads and
    // stores, then tries to use the copy. The tag cannot follow.
    let mut k = KernelBuilder::new("forge");
    let buf = k.param_ptr("buf", Elem::U32); // 4 words: [cap lo, cap hi, copy lo, copy hi]
    k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
        k.store(&buf, Expr::u32(2), buf.at(Expr::u32(0)));
        k.store(&buf, Expr::u32(3), buf.at(Expr::u32(1)));
    });
    let kernel = k.finish();
    let mut gpu = cheri_gpu();
    let b = gpu.alloc::<u32>(4);
    // Host seeds a genuine capability into words 0-1.
    let target = cheri_cap::CapPipe::almighty().set_addr(b.addr()).set_bounds(16).0;
    gpu.sm_mut().memory_mut().write_cap(b.addr(), target.to_mem()).unwrap();
    assert!(gpu.sm().memory().read_cap(b.addr()).unwrap().tag());
    gpu.launch(&kernel, Launch::new(1, 8), &[(&b).into()]).expect("copy runs");
    // The copy has identical bits but no tag.
    let copy = gpu.sm().memory().read_cap(b.addr() + 8).unwrap();
    assert!(!copy.tag(), "tag must not survive an integer copy");
}

/// Monotonicity: a kernel cannot widen the bounds of a capability it was
/// given.
#[test]
fn bounds_cannot_be_widened() {
    let mut k = KernelBuilder::new("widen");
    let buf = k.param_ptr("buf", Elem::I32);
    let p = k.var_ptr("p", Elem::I32);
    k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
        // Walk past the end and dereference: the bounds went along with the
        // derived pointer, so this traps even through pointer arithmetic.
        let buf2 = buf.clone();
        k.assign(&p, buf2.offset(Expr::u32(100)));
        k.store(&buf, Expr::u32(0), p.at(Expr::u32(0)));
    });
    let kernel = k.finish();
    let mut gpu = cheri_gpu();
    let b = gpu.alloc::<i32>(64);
    expect_cheri_trap(gpu.launch(&kernel, Launch::new(1, 8), &[(&b).into()]));
}

/// Isolation between kernel arguments: the capability for one buffer grants
/// nothing over another, even though both live in the same DRAM.
#[test]
fn buffers_are_isolated() {
    let mut k = KernelBuilder::new("cross");
    let a = k.param_ptr("a", Elem::I32);
    let b = k.param_ptr("b", Elem::I32);
    k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
        // Positive probe: in-bounds works.
        k.store(&a, Expr::u32(0), Expr::i32(1));
        // Escape attempt: index far enough past `a` to land inside `b`.
        k.store(&a, Expr::u32(64), b.at(Expr::u32(0)));
    });
    let kernel = k.finish();
    let mut gpu = cheri_gpu();
    let ba = gpu.alloc::<i32>(16);
    let bb = gpu.alloc_from(&[7i32; 16]);
    expect_cheri_trap(gpu.launch(&kernel, Launch::new(1, 8), &[(&ba).into(), (&bb).into()]));
}

/// The stack is protected too: runaway stack indexing cannot reach the heap
/// (the stack capability covers only the stack arena).
#[test]
fn stack_capability_confines_stack_accesses() {
    // Force stack usage with many variables, then (ab)use one spilled
    // variable normally — the positive case must still work.
    let mut k = KernelBuilder::new("stacky");
    let out = k.param_ptr("out", Elem::I32);
    let vars: Vec<_> = (0..24).map(|i| k.var_i32(&format!("v{i}"))).collect();
    for (i, v) in vars.iter().enumerate() {
        k.assign(v, Expr::i32(i as i32));
    }
    let acc = k.var_i32("acc");
    k.assign(&acc, Expr::i32(0));
    for v in &vars {
        k.assign(&acc, acc.clone() + v.clone());
    }
    k.if_(k.global_id().eq_(Expr::u32(0)), |kb| {
        kb.store(&out, Expr::u32(0), acc.clone());
    });
    let kernel = k.finish();
    let mut gpu = cheri_gpu();
    let b = gpu.alloc::<i32>(4);
    gpu.launch(&kernel, Launch::new(1, 8), &[(&b).into()]).expect("spilling kernel runs");
    assert_eq!(gpu.read(&b)[0], (0..24).sum::<i32>());
}

/// The same overrun kernel in the three safety postures: silent corruption
/// (baseline), CHERI trap, Rust panic — Figure 1 writ large.
#[test]
fn figure1_three_postures() {
    fn overrun() -> Kernel {
        let mut k = KernelBuilder::new("overrun3");
        let buf = k.param_ptr("buf", Elem::I32);
        k.if_(k.global_id().eq_(Expr::u32(0)), |k| {
            // Index 16: one 64-byte allocation granule past the end of an
            // 8-element buffer - inside the neighbouring allocation.
            k.store(&buf, Expr::u32(16), Expr::i32(0x41));
        });
        k.finish()
    }
    // Baseline: silently corrupts the neighbour allocation.
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::Off), Mode::Baseline);
    let a = gpu.alloc::<i32>(8);
    let neighbour = gpu.alloc_from(&[0i32; 16]);
    gpu.launch(&overrun(), Launch::new(1, 8), &[(&a).into()]).expect("baseline is oblivious");
    assert!(gpu.read(&neighbour).contains(&0x41));

    // CHERI: trap.
    let mut gpu = cheri_gpu();
    let a = gpu.alloc::<i32>(8);
    expect_cheri_trap(gpu.launch(&overrun(), Launch::new(1, 8), &[(&a).into()]));

    // Rust: panic.
    let mut gpu = Gpu::new(SmConfig::small(CheriMode::Off), Mode::RustChecked);
    let a = gpu.alloc::<i32>(8);
    match gpu.launch(&overrun(), Launch::new(1, 8), &[(&a).into()]) {
        Err(LaunchError::Run(RunError::Trap(t))) => {
            assert!(matches!(t.cause, TrapCause::Environment))
        }
        other => panic!("{other:?}"),
    }
}
